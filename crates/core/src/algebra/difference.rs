//! Set difference on decompositions.
//!
//! `t ∈ (L − R)` in a world iff `t` exists there and no tuple of `R` with
//! the same values exists there. Difference is the hardest operator on
//! compressed world-sets (it compares *across* tuples), so the
//! implementation prunes aggressively: only right tuples whose possible
//! values overlap `t`'s on every column are considered, and only the
//! components those candidates actually touch are merged.

use maybms_relational::{Result, Value};

use crate::cell::Cell;
use crate::field::Field;
use crate::wsd::{Existence, TemplateCell, TupleTemplate, Wsd};

use super::common::{
    add_exists_column, alias_cells, all_open_fields, dead_in_row, exists_loc, possible_values_of,
    snapshot, values_intersect, TupleInfo,
};

/// input_l − input_r → out.
pub fn difference_op(wsd: &mut Wsd, left: &str, right: &str, out: &str) -> Result<()> {
    let (ls, lt) = snapshot(wsd, left)?;
    let (rs, rt) = snapshot(wsd, right)?;
    ls.union_compatible(&rs)?;
    let arity = ls.len();
    wsd.add_relation(out, ls.clone())?;

    // possible values per right tuple per column (for pruning)
    let mut r_poss: Vec<Vec<Vec<Value>>> = Vec::with_capacity(rt.len());
    for s in &rt {
        let mut cols = Vec::with_capacity(arity);
        for pos in 0..arity {
            cols.push(possible_values_of(wsd, right, s, pos)?);
        }
        r_poss.push(cols);
    }

    for t in &lt {
        let mut t_poss: Vec<Vec<Value>> = Vec::with_capacity(arity);
        for pos in 0..arity {
            t_poss.push(possible_values_of(wsd, left, t, pos)?);
        }
        // candidate right tuples: overlap on every column
        let candidates: Vec<&TupleInfo> = rt
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                (0..arity).all(|pos| values_intersect(&t_poss[pos], &r_poss[*i][pos]))
            })
            .map(|(_, s)| s)
            .collect();

        let new_tid = wsd.fresh_tid();
        let identity: Vec<usize> = (0..arity).collect();

        if candidates.is_empty() {
            // no right tuple can ever equal t: u is just t
            let cells = alias_cells(wsd, new_tid, t, &identity)?;
            let exists = match exists_loc(wsd, t)? {
                None => Existence::Always,
                Some(loc) => {
                    wsd.alias_field(Field::exists(new_tid), loc);
                    Existence::Open
                }
            };
            wsd.push_template(out, TupleTemplate { tid: new_tid, cells, exists })?;
            continue;
        }

        // Fully static case: t certain & always exists, and some candidate
        // certain & always exists with equal values ⇒ t never survives.
        let t_all_certain = t
            .cells
            .iter()
            .all(|c| matches!(c, TemplateCell::Certain(_)));
        if t_all_certain && t.exists == Existence::Always {
            let killed = candidates.iter().any(|s| {
                s.exists == Existence::Always
                    && s.cells.iter().zip(&t.cells).all(|(a, b)| match (a, b) {
                        (TemplateCell::Certain(x), TemplateCell::Certain(y)) => x == y,
                        _ => false,
                    })
            });
            if killed {
                continue;
            }
        }

        // Dynamic: merge everything t and the candidates depend on.
        let mut comps: Vec<usize> = Vec::new();
        for &(_, (c, _)) in &all_open_fields(wsd, t)? {
            comps.push(c);
        }
        if let Some((c, _)) = exists_loc(wsd, t)? {
            comps.push(c);
        }
        for s in &candidates {
            for &(_, (c, _)) in &all_open_fields(wsd, s)? {
                comps.push(c);
            }
            if let Some((c, _)) = exists_loc(wsd, s)? {
                comps.push(c);
            }
        }
        if comps.is_empty() {
            // t and all candidates certain, but values differ (checked
            // above) ⇒ t survives unconditionally.
            let cells = alias_cells(wsd, new_tid, t, &identity)?;
            wsd.push_template(
                out,
                TupleTemplate { tid: new_tid, cells, exists: Existence::Always },
            )?;
            continue;
        }
        let merged = wsd.merge_components(&comps)?;

        // Resolve per-row value accessors after the merge.
        let t_open = all_open_fields(wsd, t)?;
        let mut t_watch: Vec<usize> = t_open.iter().map(|&(_, (_, col))| col).collect();
        if let Some((c, col)) = exists_loc(wsd, t)? {
            debug_assert_eq!(c, merged);
            t_watch.push(col);
        }
        struct Cand {
            cells: Vec<TemplateCell>,
            open: Vec<(usize, usize)>, // (position, merged column)
            watch: Vec<usize>,
        }
        let mut cands: Vec<Cand> = Vec::with_capacity(candidates.len());
        for s in &candidates {
            let open: Vec<(usize, usize)> = all_open_fields(wsd, s)?
                .into_iter()
                .map(|(pos, (_, col))| (pos, col))
                .collect();
            let mut watch: Vec<usize> = open.iter().map(|&(_, col)| col).collect();
            if let Some((c, col)) = exists_loc(wsd, s)? {
                debug_assert_eq!(c, merged);
                watch.push(col);
            }
            cands.push(Cand { cells: s.cells.clone(), open, watch });
        }
        let t_cells = t.cells.clone();
        let t_open_cols: Vec<(usize, usize)> =
            t_open.iter().map(|&(pos, (_, col))| (pos, col)).collect();

        add_exists_column(wsd, merged, new_tid, move |row| {
            if dead_in_row(row, &t_watch) {
                return Cell::Bottom;
            }
            // materialize t's values in this row
            let mut tv: Vec<Value> = Vec::with_capacity(arity);
            for (pos, cell) in t_cells.iter().enumerate() {
                match cell {
                    TemplateCell::Certain(v) => tv.push(v.clone()),
                    TemplateCell::Open => {
                        let col = t_open_cols
                            .iter()
                            .find(|&&(p, _)| p == pos)
                            .map(|&(_, c)| c)
                            .expect("open field resolved"); // maybms-lint: allow(no-panic-in-prod) -- the field was verified to resolve to an open position earlier in this pass; a miss is a broken rewrite invariant
                        match row.cell(col) {
                            Cell::Val(v) => tv.push(v.clone()),
                            Cell::Bottom => return Cell::Bottom,
                        }
                    }
                }
            }
            // does any candidate exist with equal values?
            'cands: for cand in &cands {
                if dead_in_row(row, &cand.watch) {
                    continue;
                }
                for (pos, cell) in cand.cells.iter().enumerate() {
                    let sv = match cell {
                        TemplateCell::Certain(v) => v.clone(),
                        TemplateCell::Open => {
                            let col = cand
                                .open
                                .iter()
                                .find(|&&(p, _)| p == pos)
                                .map(|&(_, c)| c)
                                .expect("open field resolved"); // maybms-lint: allow(no-panic-in-prod) -- the field was verified to resolve to an open position earlier in this pass; a miss is a broken rewrite invariant
                            match row.cell(col) {
                                Cell::Val(v) => v.clone(),
                                Cell::Bottom => continue 'cands,
                            }
                        }
                    };
                    if sv != tv[pos] {
                        continue 'cands;
                    }
                }
                return Cell::Bottom; // shadowed by an existing equal tuple
            }
            Cell::Val(Value::Bool(true))
        })?;
        let cells = alias_cells(wsd, new_tid, t, &identity)?;
        wsd.push_template(
            out,
            TupleTemplate { tid: new_tid, cells, exists: Existence::Open },
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::algebra::Query;
    use crate::wsd::Wsd;
    use maybms_relational::{ColumnType, Expr, Schema, Value};
    use maybms_worldset::eval::eval_in_all_worlds;
    use maybms_worldset::OrSetCell;

    fn wsd() -> Wsd {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.add_relation("s", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.push_orset(
            "r",
            vec![OrSetCell::weighted(vec![(Value::Int(1), 0.5), (Value::Int(2), 0.5)]).unwrap()],
        )
        .unwrap();
        w.push_certain("r", vec![Value::Int(3)]).unwrap();
        w.push_orset(
            "s",
            vec![OrSetCell::weighted(vec![(Value::Int(2), 0.4), (Value::Int(3), 0.6)]).unwrap()],
        )
        .unwrap();
        w
    }

    fn check(q: &Query, w: &Wsd) {
        let lhs = q.eval(w).unwrap().to_worldset(100_000).unwrap();
        let rhs = eval_in_all_worlds(&w.to_worldset(100_000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn difference_matches_oracle() {
        let w = wsd();
        check(&Query::table("r").difference(Query::table("s")), &w);
    }

    #[test]
    fn difference_with_self_is_empty() {
        let w = wsd();
        let q = Query::table("r").difference(Query::table("r"));
        let out = q.eval(&w).unwrap();
        let ws = out.to_worldset(1000).unwrap();
        for (world, _) in ws.worlds() {
            assert!(world.get("result").unwrap().is_empty());
        }
    }

    #[test]
    fn difference_after_selection() {
        let w = wsd();
        let q = Query::table("r")
            .difference(Query::table("s").select(Expr::col("a").gt(Expr::lit(2i64))));
        check(&q, &w);
    }

    #[test]
    fn difference_static_kill() {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.add_relation("s", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.push_certain("r", vec![Value::Int(1)]).unwrap();
        w.push_certain("r", vec![Value::Int(2)]).unwrap();
        w.push_certain("s", vec![Value::Int(1)]).unwrap();
        let q = Query::table("r").difference(Query::table("s"));
        let out = q.eval(&w).unwrap();
        let ws = out.to_worldset(10).unwrap();
        assert_eq!(ws.worlds()[0].0.get("result").unwrap().canonical().len(), 1);
        check(&q, &w);
    }

    #[test]
    fn incompatible_schemas_error() {
        let mut w = wsd();
        w.add_relation("t", Schema::new(vec![("b", ColumnType::Str)])).unwrap();
        assert!(Query::table("r")
            .difference(Query::table("t"))
            .eval(&w)
            .is_err());
    }
}
