//! Projection on decompositions.
//!
//! Projection restricts the template; component columns of dropped fields
//! are garbage-collected by normalization (which is what removes the
//! Symptom component in the paper's example). Care is needed when a
//! *dropped* open field can be ⊥: its ⊥ encodes the tuple's deletion, so
//! the tuple's existence must keep observing it — we then merge those
//! components into a fresh existence column before dropping the field.

use maybms_relational::Result;

use crate::cell::Cell;
use crate::field::Field;
use crate::wsd::{Existence, TupleTemplate, Wsd};

use super::common::{
    add_exists_column, alias_cells, dead_in_row, exists_loc, open_fields_at, snapshot, TupleInfo,
};

/// π_cols(input) → out.
pub fn project_op(wsd: &mut Wsd, input: &str, cols: &[&str], out: &str) -> Result<()> {
    let (schema, tuples) = snapshot(wsd, input)?;
    let out_schema = schema.project(cols)?;
    let keep_positions: Vec<usize> = cols
        .iter()
        .map(|c| schema.index_of(c))
        .collect::<Result<_>>()?;
    wsd.add_relation(out, out_schema)?;

    for t in &tuples {
        project_tuple(wsd, t, &keep_positions, out)?;
    }
    Ok(())
}

/// Projects a single template tuple onto `keep_positions`, emitting it into
/// `out`. Handles the ⊥-capable dropped-field case by merging the marker
/// components into a fresh existence column. Shared with the vectorized
/// projection's slow path.
pub(crate) fn project_tuple(
    wsd: &mut Wsd,
    t: &TupleInfo,
    keep_positions: &[usize],
    out: &str,
) -> Result<()> {
    let new_tid = wsd.fresh_tid();

    // Dropped open fields whose columns can be ⊥ carry deletion
    // markers; their components must feed the new existence field.
    let dropped: Vec<usize> = (0..t.cells.len())
        .filter(|p| !keep_positions.contains(p))
        .collect();
    let dropped_open = open_fields_at(wsd, t, &dropped)?;
    let mut marker_comps: Vec<usize> = Vec::new();
    for &(_, (c, col)) in &dropped_open {
        let comp = wsd.component(c).expect("mapped component"); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
        if comp.column_has_bottom(col) {
            marker_comps.push(c);
        }
    }

    if marker_comps.is_empty() {
        // Fast path: existence is simply inherited.
        let exists = match exists_loc(wsd, t)? {
            None => Existence::Always,
            Some(loc) => {
                wsd.alias_field(Field::exists(new_tid), loc);
                Existence::Open
            }
        };
        let cells = alias_cells(wsd, new_tid, t, keep_positions)?;
        wsd.push_template(out, TupleTemplate { tid: new_tid, cells, exists })?;
        return Ok(());
    }

    // Slow path: conjoin the ⊥-capable dropped components (and the old
    // existence field) into a fresh existence column.
    if let Some((c, _)) = exists_loc(wsd, t)? {
        marker_comps.push(c);
    }
    let merged = wsd.merge_components(&marker_comps)?;
    let dropped_now = open_fields_at(wsd, t, &dropped)?;
    let mut watch: Vec<usize> = dropped_now
        .iter()
        .filter(|&&(_, (c, _))| c == merged)
        .map(|&(_, (_, col))| col)
        .collect();
    if let Some((c, col)) = exists_loc(wsd, t)? {
        debug_assert_eq!(c, merged);
        watch.push(col);
    }
    add_exists_column(wsd, merged, new_tid, |row| {
        if dead_in_row(row, &watch) {
            Cell::Bottom
        } else {
            Cell::Val(maybms_relational::Value::Bool(true))
        }
    })?;
    let cells = alias_cells(wsd, new_tid, t, keep_positions)?;
    wsd.push_template(
        out,
        TupleTemplate { tid: new_tid, cells, exists: Existence::Open },
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::algebra::Query;
    use crate::examples::medical_wsd;
    use maybms_relational::{Expr, Value};
    use maybms_worldset::eval::eval_in_all_worlds;

    /// The paper's §2 pipeline: after selecting pregnancy and projecting
    /// onto Test, the result is the WSD `{(ultrasound, 0.4), (⊥, 0.6)}` —
    /// two worlds, one containing ultrasound, one empty.
    #[test]
    fn paper_projection_result() {
        let wsd = medical_wsd();
        let q = Query::table("R")
            .select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")))
            .project(["test"]);
        let out = q.eval(&wsd).unwrap();
        out.validate().unwrap();

        let ws = out.to_worldset(1000).unwrap();
        let merged = ws.merged();
        assert_eq!(merged.len(), 2, "ultrasound-world and empty world");
        // stats: a single 2-row component remains after normalization
        let stats = out.stats();
        assert_eq!(stats.components, 1);
        assert_eq!(stats.max_component_rows, 2);
        // P(ultrasound) = 0.4
        let conf = crate::prob::tuple_confidence(&out, "result").unwrap();
        assert_eq!(conf.len(), 1);
        assert_eq!(conf[0].0[0], Value::str("ultrasound"));
        assert!((conf[0].1 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn projection_drops_unused_component() {
        let wsd = medical_wsd();
        // projecting away symptom should drop the symptom component
        let q = Query::table("R").project(["diagnosis", "test"]);
        let out = q.eval(&wsd).unwrap();
        // r1's diagnosis+test component remains; r2 becomes fully certain
        assert_eq!(out.stats().components, 1);
        let lhs = out.to_worldset(1000).unwrap();
        let rhs =
            eval_in_all_worlds(&wsd.to_worldset(1000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn projection_after_selection_keeps_deletion_markers() {
        let wsd = medical_wsd();
        // Select on symptom (component 2), then project symptom away.
        // The deletion marker must survive through the existence field.
        let q = Query::table("R")
            .select(Expr::col("symptom").eq(Expr::lit("fatigue")))
            .project(["diagnosis"]);
        let out = q.eval(&wsd).unwrap();
        out.validate().unwrap();
        let lhs = out.to_worldset(1000).unwrap();
        let rhs =
            eval_in_all_worlds(&wsd.to_worldset(1000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn project_reorders_columns() {
        let wsd = medical_wsd();
        let q = Query::table("R").project(["test", "diagnosis"]);
        let out = q.eval(&wsd).unwrap();
        assert_eq!(
            out.relation("result").unwrap().schema.names(),
            vec!["test", "diagnosis"]
        );
    }

    #[test]
    fn unknown_column_errors() {
        let wsd = medical_wsd();
        assert!(Query::table("R").project(["nope"]).eval(&wsd).is_err());
    }
}
