//! Lossless binary codec for whole decompositions — the snapshot payload
//! of the durable storage engine (`maybms-storage` wraps these bytes in
//! checksummed pages; this module only defines the payload).
//!
//! The encoding preserves a [`Wsd`] *exactly*: relation templates with
//! their tuple identifiers, component slots **including tombstones** (so
//! slot indices and dense choice vectors survive), per-column interned
//! dictionaries with their first-occurrence order and raw code columns,
//! probabilities as IEEE 754 bit patterns, the field map, the reverse
//! field index and the dirty set. Decoding therefore reproduces a
//! decomposition whose query results are bit-identical to the original's
//! — the property the oracle suite checks — and re-encoding a decoded
//! WSD yields the same bytes (the field map, the only hash-ordered
//! structure, is written in sorted order).
//!
//! Every count and code is bounds-checked on decode and the result must
//! pass [`Wsd::validate`], so a corrupt payload surfaces as an
//! [`Error::Storage`] instead of a panic or a silently wrong database.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use maybms_relational::{Column, ColumnType, Error, Result, Schema};
use maybms_storage::{Reader, Writer};

use crate::cell::Cell;
use crate::component::Component;
use crate::field::{Field, FieldKind, Tid};
use crate::wsd::{Existence, RelTemplate, TemplateCell, TupleTemplate, Wsd};

/// Version of the payload encoding (independent of the container format).
pub const CODEC_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// encode
// ---------------------------------------------------------------------

fn put_field(w: &mut Writer, f: Field) {
    w.put_u64(f.tid.0);
    match f.kind {
        FieldKind::Attr(p) => {
            w.put_u8(0);
            w.put_u32(p);
        }
        FieldKind::Exists => w.put_u8(1),
    }
}

fn put_cell(w: &mut Writer, c: &Cell) {
    match c {
        Cell::Bottom => w.put_u8(0),
        Cell::Val(v) => {
            w.put_u8(1);
            w.put_value(v);
        }
    }
}

fn column_type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Bool => 0,
        ColumnType::Int => 1,
        ColumnType::Float => 2,
        ColumnType::Str => 3,
    }
}

fn put_schema(w: &mut Writer, s: &Schema) {
    w.put_u32(s.len() as u32);
    for c in s.columns() {
        w.put_str(&c.name);
        w.put_u8(column_type_tag(c.ty));
    }
}

fn put_component(w: &mut Writer, c: &Component) {
    w.put_u32(c.num_fields() as u32);
    for &f in c.fields() {
        put_field(w, f);
    }
    w.put_u32(c.num_rows() as u32);
    for &p in c.probs() {
        w.put_f64(p);
    }
    for col in 0..c.num_fields() {
        let (dict, codes) = c.col_parts(col);
        w.put_u32(dict.len() as u32);
        for cell in dict {
            put_cell(w, cell);
        }
        for &code in codes {
            w.put_u32(code);
        }
    }
}

/// Serializes a decomposition to its canonical snapshot payload.
pub fn encode_wsd(wsd: &Wsd) -> Vec<u8> {
    let mut w = Writer::with_capacity(wsd.size_bytes() / 2);
    w.put_u32(CODEC_VERSION);
    w.put_u64(wsd.next_tid);

    // relations (BTreeMap: already in deterministic name order)
    w.put_u32(wsd.relations.len() as u32);
    for (name, tpl) in &wsd.relations {
        w.put_str(name);
        put_schema(&mut w, &tpl.schema);
        w.put_u32(tpl.tuples.len() as u32);
        for t in &tpl.tuples {
            w.put_u64(t.tid.0);
            w.put_u8(match t.exists {
                Existence::Always => 0,
                Existence::Open => 1,
            });
            w.put_u32(t.cells.len() as u32);
            for cell in &t.cells {
                match cell {
                    TemplateCell::Certain(v) => {
                        w.put_u8(0);
                        w.put_value(v);
                    }
                    TemplateCell::Open => w.put_u8(1),
                }
            }
        }
    }

    // component slots, tombstones included
    w.put_u32(wsd.components.len() as u32);
    for slot in &wsd.components {
        match slot {
            None => w.put_u8(0),
            Some(c) => {
                w.put_u8(1);
                put_component(&mut w, c);
            }
        }
    }

    // field map, sorted for deterministic bytes
    let mut entries: Vec<(Field, (usize, usize))> =
        // maybms-lint: allow(determinism) -- hash order is erased by the sort_unstable_by_key on the next line before any byte is emitted
        wsd.field_map.iter().map(|(&f, &loc)| (f, loc)).collect();
    entries.sort_unstable_by_key(|&(f, _)| f);
    w.put_u32(entries.len() as u32);
    for (f, (c, col)) in entries {
        put_field(&mut w, f);
        w.put_u32(c as u32);
        w.put_u32(col as u32);
    }

    // reverse index, exact order preserved
    w.put_u32(wsd.rev.len() as u32);
    for cols in &wsd.rev {
        w.put_u32(cols.len() as u32);
        for fields in cols {
            w.put_u32(fields.len() as u32);
            for &f in fields {
                put_field(&mut w, f);
            }
        }
    }

    // dirty set
    w.put_u32(wsd.dirty.len() as u32);
    for &i in &wsd.dirty {
        w.put_u32(i as u32);
    }

    w.into_inner()
}

// ---------------------------------------------------------------------
// decode
// ---------------------------------------------------------------------

fn get_field(r: &mut Reader) -> Result<Field> {
    let tid = Tid(r.get_u64()?);
    Ok(match r.get_u8()? {
        0 => Field::attr(tid, r.get_u32()?),
        1 => Field::exists(tid),
        t => return Err(Error::Storage(format!("unknown field kind tag {t}"))),
    })
}

fn get_cell(r: &mut Reader) -> Result<Cell> {
    Ok(match r.get_u8()? {
        0 => Cell::Bottom,
        1 => Cell::Val(r.get_value()?),
        t => return Err(Error::Storage(format!("unknown cell tag {t}"))),
    })
}

fn get_schema(r: &mut Reader) -> Result<Schema> {
    let n = r.get_u32()? as usize;
    let mut cols = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let name = r.get_str()?;
        let ty = match r.get_u8()? {
            0 => ColumnType::Bool,
            1 => ColumnType::Int,
            2 => ColumnType::Float,
            3 => ColumnType::Str,
            t => return Err(Error::Storage(format!("unknown column type tag {t}"))),
        };
        cols.push(Column::new(name, ty));
    }
    Ok(Schema::from_columns(cols))
}

fn get_component(r: &mut Reader) -> Result<Component> {
    let nfields = r.get_u32()? as usize;
    let mut fields = Vec::with_capacity(nfields.min(1 << 16));
    for _ in 0..nfields {
        fields.push(get_field(r)?);
    }
    let nrows = r.get_u32()? as usize;
    if nrows > r.remaining() {
        return Err(Error::Storage(format!(
            "corrupt row count {nrows} exceeds remaining payload"
        )));
    }
    let mut probs = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        probs.push(r.get_f64()?);
    }
    let mut cols = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let dict_len = r.get_u32()? as usize;
        if dict_len > r.remaining() {
            return Err(Error::Storage(format!(
                "corrupt dictionary length {dict_len} exceeds remaining payload"
            )));
        }
        let mut dict = Vec::with_capacity(dict_len);
        for _ in 0..dict_len {
            dict.push(get_cell(r)?);
        }
        let mut codes = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            codes.push(r.get_u32()?);
        }
        cols.push((dict, codes));
    }
    Component::from_parts(fields, cols, probs)
}

/// Decodes a snapshot payload back into a decomposition, verifying all
/// structural invariants ([`Wsd::validate`]) before returning it.
pub fn decode_wsd(bytes: &[u8]) -> Result<Wsd> {
    let mut r = Reader::new(bytes);
    let version = r.get_u32()?;
    if version != CODEC_VERSION {
        return Err(Error::Storage(format!(
            "unsupported WSD payload version {version} (this build reads {CODEC_VERSION})"
        )));
    }
    let next_tid = r.get_u64()?;

    let nrels = r.get_u32()? as usize;
    let mut relations = BTreeMap::new();
    for _ in 0..nrels {
        let name = r.get_str()?;
        let schema = get_schema(&mut r)?;
        let ntuples = r.get_u32()? as usize;
        if ntuples > r.remaining() {
            return Err(Error::Storage(format!(
                "corrupt tuple count {ntuples} exceeds remaining payload"
            )));
        }
        let mut tuples = Vec::with_capacity(ntuples);
        for _ in 0..ntuples {
            let tid = Tid(r.get_u64()?);
            let exists = match r.get_u8()? {
                0 => Existence::Always,
                1 => Existence::Open,
                t => return Err(Error::Storage(format!("unknown existence tag {t}"))),
            };
            let ncells = r.get_u32()? as usize;
            let mut cells = Vec::with_capacity(ncells.min(1 << 16));
            for _ in 0..ncells {
                cells.push(match r.get_u8()? {
                    0 => TemplateCell::Certain(r.get_value()?),
                    1 => TemplateCell::Open,
                    t => {
                        return Err(Error::Storage(format!("unknown template cell tag {t}")))
                    }
                });
            }
            tuples.push(TupleTemplate { tid, cells, exists });
        }
        if relations.insert(name.clone(), RelTemplate { schema, tuples }).is_some() {
            return Err(Error::Storage(format!("duplicate relation {name} in snapshot")));
        }
    }

    let nslots = r.get_u32()? as usize;
    if nslots > r.remaining() {
        return Err(Error::Storage(format!(
            "corrupt component count {nslots} exceeds remaining payload"
        )));
    }
    let mut components: Vec<Option<Component>> = Vec::with_capacity(nslots);
    for _ in 0..nslots {
        components.push(match r.get_u8()? {
            0 => None,
            1 => Some(get_component(&mut r)?),
            t => return Err(Error::Storage(format!("unknown component slot tag {t}"))),
        });
    }

    let nmap = r.get_u32()? as usize;
    if nmap > r.remaining() {
        return Err(Error::Storage(format!(
            "corrupt field map count {nmap} exceeds remaining payload"
        )));
    }
    let mut field_map = HashMap::with_capacity(nmap);
    for _ in 0..nmap {
        let f = get_field(&mut r)?;
        let c = r.get_u32()? as usize;
        let col = r.get_u32()? as usize;
        if field_map.insert(f, (c, col)).is_some() {
            return Err(Error::Storage(format!("duplicate field {f} in snapshot field map")));
        }
    }

    let nrev = r.get_u32()? as usize;
    if nrev != nslots {
        return Err(Error::Storage(format!(
            "reverse index covers {nrev} slots for {nslots} components"
        )));
    }
    let mut rev = Vec::with_capacity(nrev);
    for _ in 0..nrev {
        let ncols = r.get_u32()? as usize;
        if ncols > r.remaining() {
            return Err(Error::Storage(format!(
                "corrupt reverse-index width {ncols} exceeds remaining payload"
            )));
        }
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let n = r.get_u32()? as usize;
            if n > r.remaining() {
                return Err(Error::Storage(format!(
                    "corrupt reverse-index entry count {n} exceeds remaining payload"
                )));
            }
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                fields.push(get_field(&mut r)?);
            }
            cols.push(fields);
        }
        rev.push(cols);
    }

    let ndirty = r.get_u32()? as usize;
    if ndirty > r.remaining() {
        return Err(Error::Storage(format!(
            "corrupt dirty count {ndirty} exceeds remaining payload"
        )));
    }
    let mut dirty = BTreeSet::new();
    for _ in 0..ndirty {
        let i = r.get_u32()? as usize;
        if i >= nslots {
            return Err(Error::Storage(format!(
                "dirty index {i} out of range for {nslots} component slots"
            )));
        }
        dirty.insert(i);
    }
    r.expect_end()?;

    let wsd = Wsd::from_parts(relations, components, field_map, rev, dirty, next_tid);
    wsd.validate()
        .map_err(|e| Error::Storage(format!("snapshot failed validation on load: {e}")))?;
    Ok(wsd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::medical_wsd;
    use maybms_relational::Value;
    use maybms_worldset::OrSetCell;

    fn demo_wsd() -> Wsd {
        let mut w = medical_wsd();
        // exercise tombstones, merged components and a dirty set
        let live = w.live_components();
        if live.len() >= 2 {
            w.merge_components(&live[..2]).unwrap();
        }
        w.add_relation(
            "extra",
            Schema::new(vec![("x", ColumnType::Int), ("s", ColumnType::Str)]),
        )
        .unwrap();
        w.push_certain("extra", vec![Value::Int(4), Value::str("certain")]).unwrap();
        w.push_orset(
            "extra",
            vec![
                OrSetCell::weighted(vec![(Value::Int(1), 0.25), (Value::Int(2), 0.75)]).unwrap(),
                OrSetCell::certain("q"),
            ],
        )
        .unwrap();
        w
    }

    #[test]
    fn round_trip_is_lossless_and_deterministic() {
        let wsd = demo_wsd();
        wsd.validate().unwrap();
        let bytes = encode_wsd(&wsd);
        let back = decode_wsd(&bytes).unwrap();
        back.validate().unwrap();

        // world-sets identical
        let a = wsd.to_worldset(100_000).unwrap();
        let b = back.to_worldset(100_000).unwrap();
        assert!(a.equivalent(&b, 0.0), "decoded WSD must be bit-identical");

        // structure identical: counts, stats, tombstones, dirty set
        assert_eq!(wsd.stats(), back.stats());
        assert_eq!(wsd.num_component_slots(), back.num_component_slots());
        assert_eq!(wsd.has_tombstones(), back.has_tombstones());
        assert_eq!(wsd.dirty_components(), back.dirty_components());
        assert_eq!(wsd.num_mapped_fields(), back.num_mapped_fields());

        // re-encoding reproduces the same bytes
        assert_eq!(bytes, encode_wsd(&back));
    }

    #[test]
    fn empty_wsd_round_trips() {
        let wsd = Wsd::new();
        let back = decode_wsd(&encode_wsd(&wsd)).unwrap();
        assert_eq!(back.world_count().to_u64(), Some(1));
        assert_eq!(back.stats(), wsd.stats());
    }

    #[test]
    fn special_floats_survive() {
        let mut w = Wsd::new();
        w.add_relation("f", Schema::new(vec![("v", ColumnType::Float)])).unwrap();
        w.push_certain("f", vec![Value::Float(-0.0)]).unwrap();
        w.push_certain("f", vec![Value::Float(f64::INFINITY)]).unwrap();
        w.push_certain("f", vec![Value::Float(1e-300)]).unwrap();
        let back = decode_wsd(&encode_wsd(&w)).unwrap();
        let tpl = back.relation("f").unwrap();
        let bits: Vec<u64> = tpl
            .tuples
            .iter()
            .map(|t| match &t.cells[0] {
                TemplateCell::Certain(Value::Float(f)) => f.to_bits(),
                other => panic!("unexpected cell {other:?}"),
            })
            .collect();
        assert_eq!(
            bits,
            vec![(-0.0f64).to_bits(), f64::INFINITY.to_bits(), 1e-300f64.to_bits()]
        );
    }

    #[test]
    fn corrupt_payloads_error_not_panic() {
        let wsd = demo_wsd();
        let bytes = encode_wsd(&wsd);
        // truncations at every prefix length must fail cleanly
        for cut in [0, 1, 4, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_wsd(&bytes[..cut]).is_err(), "cut at {cut} must error");
        }
        // wrong version
        let mut v = bytes.clone();
        v[0] = 0xFF;
        assert!(decode_wsd(&v).is_err());
        // trailing garbage
        let mut t = bytes.clone();
        t.push(0);
        assert!(decode_wsd(&t).is_err());
    }

    #[test]
    fn validation_runs_on_load() {
        // hand-craft a payload whose field map points at a dead component:
        // encode a valid wsd, then flip its single live component to a
        // tombstone in the re-encoded form via the public API instead —
        // simplest is to corrupt a probability so validate fails
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.push_orset(
            "r",
            vec![OrSetCell::uniform(vec![Value::Int(1), Value::Int(2)]).unwrap()],
        )
        .unwrap();
        let live = w.live_components();
        w.component_mut(live[0]).unwrap().set_prob(0, 0.9); // sums to 1.4
        let bytes = encode_wsd(&w);
        let err = decode_wsd(&bytes).unwrap_err();
        assert!(err.to_string().contains("validation"), "{err}");
    }
}
