//! Components: the factor relations of a world-set decomposition.
//!
//! "The above WSD is defined as a relational product of five relations,
//! hereafter called components. Each component defines values for a set of
//! fields, and a world is obtained as a combination of one tuple from each
//! of the components." (paper §2)

use std::fmt;

use maybms_relational::{Error, Result};

use crate::cell::Cell;
use crate::field::Field;

/// One row of a component: a cell per field plus the row's probability
/// (the probabilistic extension of WSDs: "simply extending each component
/// with a special probability column").
#[derive(Debug, Clone, PartialEq)]
pub struct CompRow {
    pub cells: Vec<Cell>,
    pub p: f64,
}

impl CompRow {
    pub fn new(cells: Vec<Cell>, p: f64) -> CompRow {
        CompRow { cells, p }
    }
}

/// A component: an ordered set of field columns and a set of weighted rows.
///
/// Invariants (checked by [`Component::validate`]):
/// * every row has exactly one cell per field,
/// * probabilities are positive and sum to 1 (±1e-6),
/// * fields are distinct.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    fields: Vec<Field>,
    rows: Vec<CompRow>,
}

impl Component {
    pub fn new(fields: Vec<Field>, rows: Vec<CompRow>) -> Component {
        Component { fields, rows }
    }

    /// A single-field component from weighted alternatives — the shape every
    /// or-set field decomposes into.
    pub fn singleton(field: Field, alternatives: Vec<(Cell, f64)>) -> Component {
        Component {
            fields: vec![field],
            rows: alternatives
                .into_iter()
                .map(|(c, p)| CompRow::new(vec![c], p))
                .collect(),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn rows(&self) -> &[CompRow] {
        &self.rows
    }

    pub fn rows_mut(&mut self) -> &mut Vec<CompRow> {
        &mut self.rows
    }

    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column index of a field within this component.
    pub fn col_of(&self, field: Field) -> Option<usize> {
        self.fields.iter().position(|&f| f == field)
    }

    /// Structural and probabilistic invariants.
    pub fn validate(&self) -> Result<()> {
        for (i, f) in self.fields.iter().enumerate() {
            if self.fields[i + 1..].contains(f) {
                return Err(Error::InvalidExpr(format!("duplicate field {f} in component")));
            }
        }
        if self.rows.is_empty() {
            return Err(Error::InvalidExpr("component has no rows".into()));
        }
        for r in &self.rows {
            if r.cells.len() != self.fields.len() {
                return Err(Error::InvalidExpr(format!(
                    "row arity {} does not match field count {}",
                    r.cells.len(),
                    self.fields.len()
                )));
            }
            if r.p <= 0.0 {
                return Err(Error::InvalidExpr(format!("non-positive row probability {}", r.p)));
            }
        }
        let total: f64 = self.rows.iter().map(|r| r.p).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(Error::InvalidExpr(format!(
                "component probabilities sum to {total}, expected 1"
            )));
        }
        Ok(())
    }

    /// Relational product of two components: the concatenated field lists
    /// and the cross product of rows with multiplied probabilities. This is
    /// how correlations are *introduced* — e.g. when a selection predicate
    /// spans fields stored in different components.
    pub fn product(&self, other: &Component) -> Component {
        let mut fields = self.fields.clone();
        fields.extend_from_slice(&other.fields);
        let mut rows = Vec::with_capacity(self.rows.len() * other.rows.len());
        for a in &self.rows {
            for b in &other.rows {
                let mut cells = Vec::with_capacity(a.cells.len() + b.cells.len());
                cells.extend(a.cells.iter().cloned());
                cells.extend(b.cells.iter().cloned());
                rows.push(CompRow::new(cells, a.p * b.p));
            }
        }
        Component { fields, rows }
    }

    /// Appends a new field column, with the cell for each existing row
    /// computed by `f(row)`.
    pub fn add_column<F>(&mut self, field: Field, mut f: F)
    where
        F: FnMut(&CompRow) -> Cell,
    {
        self.fields.push(field);
        for r in &mut self.rows {
            let c = f(r);
            r.cells.push(c);
        }
    }

    /// Keeps only the given columns (by index, in the given order), merging
    /// rows that become identical by summing their probabilities.
    pub fn project_columns(&self, keep: &[usize]) -> Component {
        let fields: Vec<Field> = keep.iter().map(|&i| self.fields[i]).collect();
        let mut rows: Vec<CompRow> = Vec::new();
        for r in &self.rows {
            let cells: Vec<Cell> = keep.iter().map(|&i| r.cells[i].clone()).collect();
            match rows.iter_mut().find(|x| x.cells == cells) {
                Some(x) => x.p += r.p,
                None => rows.push(CompRow::new(cells, r.p)),
            }
        }
        Component { fields, rows }
    }

    /// Merges duplicate rows, summing probabilities, and drops rows with
    /// probability below `eps` (renormalizing the remainder).
    pub fn dedup_rows(&mut self, eps: f64) {
        let mut rows: Vec<CompRow> = Vec::new();
        for r in self.rows.drain(..) {
            match rows.iter_mut().find(|x| x.cells == r.cells) {
                Some(x) => x.p += r.p,
                None => rows.push(r),
            }
        }
        rows.retain(|r| r.p > eps);
        let total: f64 = rows.iter().map(|r| r.p).sum();
        if total > 0.0 && (total - 1.0).abs() > 1e-12 {
            for r in &mut rows {
                r.p /= total;
            }
        }
        self.rows = rows;
    }

    /// Distinct non-⊥ values appearing in the column of `field` — the
    /// possible values of that field, used for pruning in joins, difference
    /// and the chase.
    pub fn possible_values(&self, field: Field) -> Vec<maybms_relational::Value> {
        let Some(col) = self.col_of(field) else {
            return Vec::new();
        };
        let mut out: Vec<maybms_relational::Value> = Vec::new();
        for r in &self.rows {
            if let Cell::Val(v) = &r.cells[col] {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Estimated bytes used by this component's data (cells + probability
    /// column), matching the estimators in `maybms-relational`.
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| {
                r.cells.iter().map(Cell::size_bytes).sum::<usize>() + std::mem::size_of::<f64>()
            })
            .sum()
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.fields.iter().map(|x| x.to_string()).collect();
        writeln!(f, "{} | p", headers.join(" | "))?;
        for r in &self.rows {
            let cells: Vec<String> = r.cells.iter().map(|c| c.to_string()).collect();
            writeln!(f, "{} | {:.4}", cells.join(" | "), r.p)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Tid;
    use maybms_relational::Value;

    fn f(t: u64, a: u32) -> Field {
        Field::attr(Tid(t), a)
    }

    fn val(s: &str) -> Cell {
        Cell::Val(Value::str(s))
    }

    /// The paper's first component:
    /// r1.Diagnosis, r1.Test with rows (pregnancy, ultrasound; 0.4) and
    /// (hypothyroidism, TSH; 0.6).
    fn paper_component() -> Component {
        Component::new(
            vec![f(1, 0), f(1, 1)],
            vec![
                CompRow::new(vec![val("pregnancy"), val("ultrasound")], 0.4),
                CompRow::new(vec![val("hypothyroidism"), val("TSH")], 0.6),
            ],
        )
    }

    #[test]
    fn validate_accepts_paper_component() {
        paper_component().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut c = paper_component();
        c.rows_mut()[0].p = 0.5;
        assert!(c.validate().is_err());
        let mut c2 = paper_component();
        c2.rows_mut()[0].p = -0.1;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn validate_rejects_arity_mismatch_and_dup_fields() {
        let c = Component::new(
            vec![f(1, 0)],
            vec![CompRow::new(vec![val("a"), val("b")], 1.0)],
        );
        assert!(c.validate().is_err());
        let d = Component::new(
            vec![f(1, 0), f(1, 0)],
            vec![CompRow::new(vec![val("a"), val("b")], 1.0)],
        );
        assert!(d.validate().is_err());
        let e = Component::new(vec![f(1, 0)], vec![]);
        assert!(e.validate().is_err());
    }

    #[test]
    fn product_multiplies_probabilities() {
        let sym = Component::singleton(
            f(1, 2),
            vec![(val("weight gain"), 0.7), (val("fatigue"), 0.3)],
        );
        let p = paper_component().product(&sym);
        assert_eq!(p.num_fields(), 3);
        assert_eq!(p.num_rows(), 4);
        p.validate().unwrap();
        // The paper's world probability: 0.6 * 0.7 = 0.42 appears as a row.
        assert!(p.rows().iter().any(|r| (r.p - 0.42).abs() < 1e-12));
    }

    #[test]
    fn project_columns_merges_and_sums() {
        let c = paper_component();
        // project onto Diagnosis only — both rows stay distinct
        let p = c.project_columns(&[0]);
        assert_eq!(p.num_rows(), 2);
        // a component where projection makes rows collide
        let c2 = Component::new(
            vec![f(1, 0), f(1, 1)],
            vec![
                CompRow::new(vec![val("x"), val("a")], 0.25),
                CompRow::new(vec![val("x"), val("b")], 0.25),
                CompRow::new(vec![val("y"), val("a")], 0.5),
            ],
        );
        let p2 = c2.project_columns(&[0]);
        assert_eq!(p2.num_rows(), 2);
        let x = p2.rows().iter().find(|r| r.cells[0] == val("x")).unwrap();
        assert!((x.p - 0.5).abs() < 1e-12);
        p2.validate().unwrap();
    }

    #[test]
    fn dedup_rows_sums_and_renormalizes() {
        let mut c = Component::new(
            vec![f(1, 0)],
            vec![
                CompRow::new(vec![val("a")], 0.3),
                CompRow::new(vec![val("a")], 0.3),
                CompRow::new(vec![val("b")], 0.4),
            ],
        );
        c.dedup_rows(0.0);
        assert_eq!(c.num_rows(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn add_column_appends() {
        let mut c = paper_component();
        c.add_column(Field::exists(Tid(9)), |r| {
            if r.cells[0] == val("pregnancy") {
                Cell::Val(Value::Bool(true))
            } else {
                Cell::Bottom
            }
        });
        assert_eq!(c.num_fields(), 3);
        assert!(c.rows()[1].cells[2].is_bottom());
    }

    #[test]
    fn possible_values_skips_bottom() {
        let c = Component::singleton(
            f(1, 0),
            vec![(val("a"), 0.5), (Cell::Bottom, 0.5)],
        );
        assert_eq!(c.possible_values(f(1, 0)), vec![Value::str("a")]);
        assert!(c.possible_values(f(2, 0)).is_empty());
    }

    #[test]
    fn col_of_finds_fields() {
        let c = paper_component();
        assert_eq!(c.col_of(f(1, 1)), Some(1));
        assert_eq!(c.col_of(f(2, 0)), None);
    }
}
