//! Components: the factor relations of a world-set decomposition.
//!
//! "The above WSD is defined as a relational product of five relations,
//! hereafter called components. Each component defines values for a set of
//! fields, and a world is obtained as a combination of one tuple from each
//! of the components." (paper §2)
//!
//! # Columnar storage
//!
//! Components are stored **column-major** with a per-column dictionary of
//! interned cells: `Column { dict, codes }` keeps each distinct [`Cell`]
//! once (in first-occurrence order) and one `u32` code per row. The hot
//! normalization and factorization paths (⊥-propagation, constant
//! detection, row dedup, marginal computation) scan contiguous code slices
//! instead of cloning row `Vec<Cell>`s, and row equality within a column
//! reduces to `u32` equality because interning is exact. [`CompRow`] is
//! retained as a *materialized* row view for construction, display and
//! tests; hot paths use [`Component::cell`] / [`Component::code`] /
//! [`RowRef`] instead.

use std::collections::HashMap;
use std::fmt;

use maybms_relational::{Error, Result, Value};

use crate::cell::Cell;
use crate::field::Field;

/// One materialized row of a component: a cell per field plus the row's
/// probability (the probabilistic extension of WSDs: "simply extending each
/// component with a special probability column"). Construction/debug view;
/// the component itself stores columns.
#[derive(Debug, Clone, PartialEq)]
pub struct CompRow {
    pub cells: Vec<Cell>,
    pub p: f64,
}

impl CompRow {
    pub fn new(cells: Vec<Cell>, p: f64) -> CompRow {
        CompRow { cells, p }
    }
}

/// One interned column: `dict[codes[row]]` is the cell of `row`.
#[derive(Debug, Clone, PartialEq)]
struct Column {
    dict: Vec<Cell>,
    codes: Vec<u32>,
}

impl Column {
    fn with_capacity(rows: usize) -> Column {
        Column { dict: Vec::new(), codes: Vec::with_capacity(rows) }
    }

    fn intern(&mut self, cell: Cell, lookup: &mut HashMap<Cell, u32>) -> u32 {
        match lookup.get(&cell) {
            Some(&c) => c,
            None => {
                let c = self.dict.len() as u32;
                lookup.insert(cell.clone(), c);
                self.dict.push(cell);
                c
            }
        }
    }

    /// Re-interns the whole column from an iterator of kept row indices,
    /// dropping dictionary entries no longer referenced.
    fn compact(&mut self, kept: &[usize]) {
        let mut dict = Vec::new();
        let mut remap: Vec<u32> = vec![u32::MAX; self.dict.len()];
        let mut codes = Vec::with_capacity(kept.len());
        for &r in kept {
            let old = self.codes[r] as usize;
            if remap[old] == u32::MAX {
                remap[old] = dict.len() as u32;
                dict.push(self.dict[old].clone());
            }
            codes.push(remap[old]);
        }
        self.dict = dict;
        self.codes = codes;
    }
}

/// A component: an ordered set of field columns and a set of weighted rows,
/// stored column-major with interned cells.
///
/// Invariants (checked by [`Component::validate`]):
/// * every column has exactly one code per row,
/// * probabilities are positive and sum to 1 (±1e-6),
/// * fields are distinct.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    fields: Vec<Field>,
    cols: Vec<Column>,
    probs: Vec<f64>,
    /// Arity of the worst-offending input row when [`Component::new`] was
    /// fed rows not matching the field count; `validate` reports it. The
    /// columnar store itself is always rectangular.
    ragged_arity: Option<usize>,
}

/// A borrowed view of one component row — what mutation/evaluation
/// closures receive instead of a materialized [`CompRow`].
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    comp: &'a Component,
    row: usize,
}

impl<'a> RowRef<'a> {
    pub fn index(&self) -> usize {
        self.row
    }
    pub fn cell(&self, col: usize) -> &'a Cell {
        self.comp.cell(self.row, col)
    }
    pub fn is_bottom(&self, col: usize) -> bool {
        self.comp.cell(self.row, col).is_bottom()
    }
    pub fn p(&self) -> f64 {
        self.comp.probs[self.row]
    }
}

impl Component {
    pub fn new(fields: Vec<Field>, rows: Vec<CompRow>) -> Component {
        let mut cols: Vec<Column> = (0..fields.len())
            .map(|_| Column::with_capacity(rows.len()))
            .collect();
        let mut lookups: Vec<HashMap<Cell, u32>> = vec![HashMap::new(); fields.len()];
        let mut probs = Vec::with_capacity(rows.len());
        let mut ragged_arity = None;
        for r in rows {
            if r.cells.len() != fields.len() {
                ragged_arity = Some(r.cells.len());
            }
            for (i, cell) in r.cells.into_iter().enumerate() {
                if let Some(col) = cols.get_mut(i) {
                    let lookup = &mut lookups[i];
                    let code = col.intern(cell, lookup);
                    col.codes.push(code);
                }
            }
            probs.push(r.p);
        }
        // Tolerate under-length rows (validate() reports them): pad with ⊥
        // so the columnar shape stays rectangular.
        let n = probs.len();
        for (col, lookup) in cols.iter_mut().zip(&mut lookups) {
            while col.codes.len() < n {
                let code = col.intern(Cell::Bottom, lookup);
                col.codes.push(code);
            }
        }
        Component { fields, cols, probs, ragged_arity }
    }

    /// Rebuilds a component from its raw columnar parts — the snapshot
    /// codec's constructor. Column shapes and code ranges are checked here
    /// (a corrupt snapshot must not panic later); probabilistic invariants
    /// are left to [`Component::validate`].
    pub(crate) fn from_parts(
        fields: Vec<Field>,
        raw_cols: Vec<(Vec<Cell>, Vec<u32>)>,
        probs: Vec<f64>,
    ) -> Result<Component> {
        if raw_cols.len() != fields.len() {
            return Err(Error::Storage(format!(
                "component has {} columns for {} fields",
                raw_cols.len(),
                fields.len()
            )));
        }
        let mut cols = Vec::with_capacity(raw_cols.len());
        for (dict, codes) in raw_cols {
            if codes.len() != probs.len() {
                return Err(Error::Storage(format!(
                    "column holds {} codes for {} rows",
                    codes.len(),
                    probs.len()
                )));
            }
            if let Some(&bad) = codes.iter().find(|&&c| c as usize >= dict.len()) {
                return Err(Error::Storage(format!(
                    "code {bad} out of range for a {}-entry dictionary",
                    dict.len()
                )));
            }
            cols.push(Column { dict, codes });
        }
        Ok(Component { fields, cols, probs, ragged_arity: None })
    }

    /// The raw columnar parts of one column: `(dictionary, codes)` — what
    /// the snapshot codec serializes. Paired with [`Component::from_parts`].
    pub(crate) fn col_parts(&self, col: usize) -> (&[Cell], &[u32]) {
        let c = &self.cols[col];
        (&c.dict, &c.codes)
    }

    /// A single-field component from weighted alternatives — the shape every
    /// or-set field decomposes into.
    pub fn singleton(field: Field, alternatives: Vec<(Cell, f64)>) -> Component {
        let mut col = Column::with_capacity(alternatives.len());
        let mut lookup = HashMap::new();
        let mut probs = Vec::with_capacity(alternatives.len());
        for (cell, p) in alternatives {
            let code = col.intern(cell, &mut lookup);
            col.codes.push(code);
            probs.push(p);
        }
        Component { fields: vec![field], cols: vec![col], probs, ragged_arity: None }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    pub fn num_rows(&self) -> usize {
        self.probs.len()
    }

    /// The cell at (`row`, `col`) — O(1), two indexed loads.
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> &Cell {
        let c = &self.cols[col];
        &c.dict[c.codes[row] as usize]
    }

    /// The interned code at (`row`, `col`). Codes are comparable for cell
    /// equality *within one column of one component*.
    #[inline]
    pub fn code(&self, row: usize, col: usize) -> u32 {
        self.cols[col].codes[row]
    }

    /// The interned code column — contiguous, one `u32` per row.
    #[inline]
    pub fn codes(&self, col: usize) -> &[u32] {
        &self.cols[col].codes
    }

    /// The distinct cells of a column, in first-occurrence order. May
    /// include cells of deleted rows until the next compaction.
    #[inline]
    pub fn dict(&self, col: usize) -> &[Cell] {
        &self.cols[col].dict
    }

    #[inline]
    pub fn prob(&self, row: usize) -> f64 {
        self.probs[row]
    }

    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Overwrites one row's probability (test/tooling hook).
    pub fn set_prob(&mut self, row: usize, p: f64) {
        self.probs[row] = p;
    }

    /// Borrowed view of one row.
    #[inline]
    pub fn row_ref(&self, row: usize) -> RowRef<'_> {
        RowRef { comp: self, row }
    }

    /// Iterates borrowed row views.
    pub fn iter_rows(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..self.num_rows()).map(move |row| RowRef { comp: self, row })
    }

    /// Materializes one row (cold paths only).
    pub fn row(&self, row: usize) -> CompRow {
        CompRow {
            cells: (0..self.num_fields()).map(|c| self.cell(row, c).clone()).collect(),
            p: self.probs[row],
        }
    }

    /// Materializes all rows — construction/display/test convenience; hot
    /// paths must use [`Component::cell`] / [`Component::codes`] instead.
    pub fn rows(&self) -> Vec<CompRow> {
        (0..self.num_rows()).map(|r| self.row(r)).collect()
    }

    /// Column index of a field within this component.
    pub fn col_of(&self, field: Field) -> Option<usize> {
        self.fields.iter().position(|&f| f == field)
    }

    /// Structural and probabilistic invariants.
    pub fn validate(&self) -> Result<()> {
        for (i, f) in self.fields.iter().enumerate() {
            if self.fields[i + 1..].contains(f) {
                return Err(Error::InvalidExpr(format!("duplicate field {f} in component")));
            }
        }
        if self.probs.is_empty() {
            return Err(Error::InvalidExpr("component has no rows".into()));
        }
        if let Some(arity) = self.ragged_arity {
            return Err(Error::InvalidExpr(format!(
                "row arity {arity} does not match field count {}",
                self.fields.len()
            )));
        }
        for col in &self.cols {
            if col.codes.len() != self.probs.len() {
                return Err(Error::InvalidExpr(format!(
                    "column height {} does not match row count {}",
                    col.codes.len(),
                    self.probs.len()
                )));
            }
        }
        for &p in &self.probs {
            if p <= 0.0 {
                return Err(Error::InvalidExpr(format!("non-positive row probability {p}")));
            }
        }
        let total: f64 = self.probs.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(Error::InvalidExpr(format!(
                "component probabilities sum to {total}, expected 1"
            )));
        }
        Ok(())
    }

    /// Relational product of two components: the concatenated field lists
    /// and the cross product of rows with multiplied probabilities. This is
    /// how correlations are *introduced* — e.g. when a selection predicate
    /// spans fields stored in different components. Columnar: each left
    /// code column is repeated, each right column tiled; dictionaries are
    /// shared, no cell is cloned per row pair.
    pub fn product(&self, other: &Component) -> Component {
        let (n, m) = (self.num_rows(), other.num_rows());
        let mut cols = Vec::with_capacity(self.cols.len() + other.cols.len());
        for c in &self.cols {
            let mut codes = Vec::with_capacity(n * m);
            for &code in &c.codes {
                codes.resize(codes.len() + m, code);
            }
            cols.push(Column { dict: c.dict.clone(), codes });
        }
        for c in &other.cols {
            let mut codes = Vec::with_capacity(n * m);
            for _ in 0..n {
                codes.extend_from_slice(&c.codes);
            }
            cols.push(Column { dict: c.dict.clone(), codes });
        }
        let mut fields = self.fields.clone();
        fields.extend_from_slice(&other.fields);
        let mut probs = Vec::with_capacity(n * m);
        for &a in &self.probs {
            for &b in &other.probs {
                probs.push(a * b);
            }
        }
        Component { fields, cols, probs, ragged_arity: None }
    }

    /// Appends a new field column, with the cell for each existing row
    /// computed by `f`.
    pub fn add_column<F>(&mut self, field: Field, mut f: F)
    where
        F: FnMut(RowRef<'_>) -> Cell,
    {
        let cells: Vec<Cell> = (0..self.num_rows()).map(|r| f(self.row_ref(r))).collect();
        let mut col = Column::with_capacity(cells.len());
        let mut lookup = HashMap::new();
        for cell in cells {
            let code = col.intern(cell, &mut lookup);
            col.codes.push(code);
        }
        self.fields.push(field);
        self.cols.push(col);
    }

    /// Keeps only the given columns (by index, in the given order), merging
    /// rows that become identical by summing their probabilities. Runs in
    /// O(rows · |keep|) using interned codes as the merge key.
    pub fn project_columns(&self, keep: &[usize]) -> Component {
        let fields: Vec<Field> = keep.iter().map(|&i| self.fields[i]).collect();
        let mut first_of: HashMap<Vec<u32>, usize> = HashMap::with_capacity(self.num_rows());
        let mut kept_rows: Vec<usize> = Vec::new();
        let mut probs: Vec<f64> = Vec::new();
        let mut key = Vec::with_capacity(keep.len());
        for r in 0..self.num_rows() {
            key.clear();
            key.extend(keep.iter().map(|&c| self.cols[c].codes[r]));
            match first_of.get(&key) {
                Some(&slot) => probs[slot] += self.probs[r],
                None => {
                    first_of.insert(key.clone(), probs.len());
                    kept_rows.push(r);
                    probs.push(self.probs[r]);
                }
            }
        }
        let cols: Vec<Column> = keep
            .iter()
            .map(|&c| {
                let mut col = self.cols[c].clone();
                col.compact(&kept_rows);
                col
            })
            .collect();
        Component { fields, cols, probs, ragged_arity: None }
    }

    /// Merges duplicate rows, summing probabilities, and drops rows with
    /// probability below `eps` (renormalizing the remainder). Returns true
    /// iff anything changed. Single hash pass over interned codes.
    pub fn dedup_rows(&mut self, eps: f64) -> bool {
        let n = self.num_rows();
        let mut first_of: HashMap<Vec<u32>, usize> = HashMap::with_capacity(n);
        let mut kept_rows: Vec<usize> = Vec::new();
        let mut probs: Vec<f64> = Vec::new();
        for r in 0..n {
            let key: Vec<u32> = self.cols.iter().map(|c| c.codes[r]).collect();
            match first_of.get(&key) {
                Some(&slot) => probs[slot] += self.probs[r],
                None => {
                    first_of.insert(key, probs.len());
                    kept_rows.push(r);
                    probs.push(self.probs[r]);
                }
            }
        }
        if kept_rows.len() == n && probs.iter().all(|&p| p > eps) {
            return false;
        }
        // Drop below-eps rows, then renormalize.
        let (kept_rows, mut probs): (Vec<usize>, Vec<f64>) = kept_rows
            .into_iter()
            .zip(probs)
            .filter(|&(_, p)| p > eps)
            .unzip();
        let total: f64 = probs.iter().sum();
        if total > 0.0 && (total - 1.0).abs() > 1e-12 {
            for p in &mut probs {
                *p /= total;
            }
        }
        for col in &mut self.cols {
            col.compact(&kept_rows);
        }
        self.probs = probs;
        true
    }

    /// Retains the rows `keep` approves (by row view), compacting the
    /// dictionaries. Returns the probability mass removed. Used by the
    /// chase to delete violating rows.
    pub fn retain_rows<F>(&mut self, mut keep: F) -> f64
    where
        F: FnMut(RowRef<'_>) -> bool,
    {
        let kept_rows: Vec<usize> =
            (0..self.num_rows()).filter(|&r| keep(self.row_ref(r))).collect();
        if kept_rows.len() == self.num_rows() {
            return 0.0;
        }
        let mut removed = 0.0;
        let mut kept_iter = kept_rows.iter().peekable();
        for r in 0..self.num_rows() {
            if kept_iter.peek() == Some(&&r) {
                kept_iter.next();
            } else {
                removed += self.probs[r];
            }
        }
        for col in &mut self.cols {
            col.compact(&kept_rows);
        }
        self.probs = kept_rows.iter().map(|&r| self.probs[r]).collect();
        removed
    }

    /// Garbage-collects dictionary entries no live code references.
    /// ⊥-propagation ([`Component::set_bottom`]) and merges of components
    /// whose dictionaries already carried garbage leave *orphaned* interned
    /// cells behind — without this, dictionaries only grow. Surviving
    /// entries are re-numbered in first-occurrence order of the live codes
    /// (the order [`Component::possible_values`] observes is unchanged,
    /// since it walks codes, not the dictionary). Returns true iff any
    /// dictionary shrank.
    pub fn compact(&mut self) -> bool {
        let all_rows: Vec<usize> = (0..self.num_rows()).collect();
        let mut changed = false;
        for col in &mut self.cols {
            let mut referenced = vec![false; col.dict.len()];
            for &code in &col.codes {
                referenced[code as usize] = true;
            }
            if referenced.iter().all(|&r| r) {
                continue; // nothing orphaned; keep codes and order as-is
            }
            // Re-intern keeping every row: same remap logic the row-subset
            // paths (retain/dedup/project) already use.
            col.compact(&all_rows);
            changed = true;
        }
        changed
    }

    /// Rescales every probability by `1/total` (chase renormalization).
    pub fn renormalize(&mut self) {
        let total: f64 = self.probs.iter().sum();
        if total > 0.0 {
            for p in &mut self.probs {
                *p /= total;
            }
        }
    }

    /// Overwrites the cell at (`row`, `col`) with ⊥ (⊥-propagation).
    /// Returns true iff the cell changed. The displaced cell may linger in
    /// the dictionary until the next compaction; all scans go through live
    /// codes, so stale dictionary entries are never observed.
    pub fn set_bottom(&mut self, row: usize, col: usize) -> bool {
        let c = &mut self.cols[col];
        let bot = match c.dict.iter().position(Cell::is_bottom) {
            Some(b) => b as u32,
            None => {
                c.dict.push(Cell::Bottom);
                (c.dict.len() - 1) as u32
            }
        };
        if c.codes[row] == bot {
            return false;
        }
        c.codes[row] = bot;
        true
    }

    /// Whether any live cell of a column is ⊥.
    pub fn column_has_bottom(&self, col: usize) -> bool {
        let c = &self.cols[col];
        match c.dict.iter().position(Cell::is_bottom) {
            None => false,
            Some(b) => c.codes.contains(&(b as u32)),
        }
    }

    /// Whether every cell of a column is ⊥ — O(dict) after compaction.
    pub fn column_all_bottom(&self, col: usize) -> bool {
        let c = &self.cols[col];
        // All dict entries referenced are compact except transiently; check
        // codes against the (usually tiny) set of ⊥ dict ids.
        match c.dict.iter().position(Cell::is_bottom) {
            None => false,
            Some(b) => {
                let b = b as u32;
                c.codes.iter().all(|&code| code == b)
            }
        }
    }

    /// The constant non-⊥ cell of a column, if every row holds it.
    pub fn column_constant(&self, col: usize) -> Option<&Cell> {
        let c = &self.cols[col];
        let first = *c.codes.first()?;
        if self.probs.len() > 1 && !c.codes[1..].iter().all(|&code| code == first) {
            return None;
        }
        let cell = &c.dict[first as usize];
        (!cell.is_bottom()).then_some(cell)
    }

    /// Distinct non-⊥ values appearing in the column of `field` — the
    /// possible values of that field, used for pruning in joins, difference
    /// and the chase. First-occurrence order, computed from live codes.
    pub fn possible_values(&self, field: Field) -> Vec<Value> {
        let Some(col) = self.col_of(field) else {
            return Vec::new();
        };
        self.possible_values_col(col)
    }

    /// As [`Component::possible_values`], by column index.
    pub fn possible_values_col(&self, col: usize) -> Vec<Value> {
        let c = &self.cols[col];
        let mut seen = vec![false; c.dict.len()];
        let mut out: Vec<Value> = Vec::new();
        for &code in &c.codes {
            if !seen[code as usize] {
                seen[code as usize] = true;
                if let Cell::Val(v) = &c.dict[code as usize] {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Estimated bytes used by this component's data in the columnar
    /// layout: per column the interned dictionary cells plus one `u32` code
    /// per row, plus the probability column. Comparable with
    /// [`maybms_relational::Relation::size_bytes`] — the E1 overhead metric.
    pub fn size_bytes(&self) -> usize {
        let cells: usize = self
            .cols
            .iter()
            .map(|c| {
                c.dict.iter().map(Cell::size_bytes).sum::<usize>()
                    + c.codes.len() * std::mem::size_of::<u32>()
            })
            .sum();
        cells + self.probs.len() * std::mem::size_of::<f64>()
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.fields.iter().map(|x| x.to_string()).collect();
        writeln!(f, "{} | p", headers.join(" | "))?;
        for r in 0..self.num_rows() {
            let cells: Vec<String> =
                (0..self.num_fields()).map(|c| self.cell(r, c).to_string()).collect();
            writeln!(f, "{} | {:.4}", cells.join(" | "), self.probs[r])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Tid;
    use maybms_relational::Value;

    fn f(t: u64, a: u32) -> Field {
        Field::attr(Tid(t), a)
    }

    fn val(s: &str) -> Cell {
        Cell::Val(Value::str(s))
    }

    /// The paper's first component:
    /// r1.Diagnosis, r1.Test with rows (pregnancy, ultrasound; 0.4) and
    /// (hypothyroidism, TSH; 0.6).
    fn paper_component() -> Component {
        Component::new(
            vec![f(1, 0), f(1, 1)],
            vec![
                CompRow::new(vec![val("pregnancy"), val("ultrasound")], 0.4),
                CompRow::new(vec![val("hypothyroidism"), val("TSH")], 0.6),
            ],
        )
    }

    #[test]
    fn validate_accepts_paper_component() {
        paper_component().validate().unwrap();
    }

    #[test]
    fn columnar_round_trip() {
        let c = paper_component();
        assert_eq!(c.cell(0, 0), &val("pregnancy"));
        assert_eq!(c.cell(1, 1), &val("TSH"));
        assert_eq!(c.row(1).cells, vec![val("hypothyroidism"), val("TSH")]);
        assert_eq!(c.rows().len(), 2);
        assert_eq!(c.codes(0), &[0, 1]);
        assert_eq!(c.dict(0).len(), 2);
    }

    #[test]
    fn interning_shares_repeated_cells() {
        let c = Component::singleton(
            f(1, 0),
            vec![(val("x"), 0.25), (val("x"), 0.25), (val("y"), 0.5)],
        );
        assert_eq!(c.dict(0).len(), 2);
        assert_eq!(c.codes(0), &[0, 0, 1]);
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut c = paper_component();
        c.set_prob(0, 0.5);
        assert!(c.validate().is_err());
        let mut c2 = paper_component();
        c2.set_prob(0, -0.1);
        assert!(c2.validate().is_err());
    }

    #[test]
    fn validate_rejects_arity_mismatch_and_dup_fields() {
        // over-length row: extra cells are not stored, but validate flags it
        let c = Component::new(
            vec![f(1, 0)],
            vec![CompRow::new(vec![val("a"), val("b")], 1.0)],
        );
        assert!(c.validate().is_err());
        // under-length row: padded with ⊥ in storage, still flagged
        let u = Component::new(
            vec![f(1, 0), f(1, 1)],
            vec![CompRow::new(vec![val("a")], 1.0)],
        );
        assert!(u.validate().is_err());
        let d = Component::new(
            vec![f(1, 0), f(1, 0)],
            vec![CompRow::new(vec![val("a"), val("b")], 1.0)],
        );
        assert!(d.validate().is_err());
        let e = Component::new(vec![f(1, 0)], vec![]);
        assert!(e.validate().is_err());
    }

    #[test]
    fn product_multiplies_probabilities() {
        let sym = Component::singleton(
            f(1, 2),
            vec![(val("weight gain"), 0.7), (val("fatigue"), 0.3)],
        );
        let p = paper_component().product(&sym);
        assert_eq!(p.num_fields(), 3);
        assert_eq!(p.num_rows(), 4);
        p.validate().unwrap();
        // The paper's world probability: 0.6 * 0.7 = 0.42 appears as a row.
        assert!(p.probs().iter().any(|&q| (q - 0.42).abs() < 1e-12));
        // row-major order: (left 0, right 0), (left 0, right 1), ...
        assert_eq!(p.cell(0, 0), &val("pregnancy"));
        assert_eq!(p.cell(1, 2), &val("fatigue"));
        assert_eq!(p.cell(3, 1), &val("TSH"));
    }

    #[test]
    fn project_columns_merges_and_sums() {
        let c = paper_component();
        // project onto Diagnosis only — both rows stay distinct
        let p = c.project_columns(&[0]);
        assert_eq!(p.num_rows(), 2);
        // a component where projection makes rows collide
        let c2 = Component::new(
            vec![f(1, 0), f(1, 1)],
            vec![
                CompRow::new(vec![val("x"), val("a")], 0.25),
                CompRow::new(vec![val("x"), val("b")], 0.25),
                CompRow::new(vec![val("y"), val("a")], 0.5),
            ],
        );
        let p2 = c2.project_columns(&[0]);
        assert_eq!(p2.num_rows(), 2);
        let rows = p2.rows();
        let x = rows.iter().find(|r| r.cells[0] == val("x")).unwrap();
        assert!((x.p - 0.5).abs() < 1e-12);
        p2.validate().unwrap();
        // projection compacts the dictionary
        assert_eq!(p2.dict(0).len(), 2);
    }

    #[test]
    fn dedup_rows_sums_and_renormalizes() {
        let mut c = Component::new(
            vec![f(1, 0)],
            vec![
                CompRow::new(vec![val("a")], 0.3),
                CompRow::new(vec![val("a")], 0.3),
                CompRow::new(vec![val("b")], 0.4),
            ],
        );
        assert!(c.dedup_rows(0.0));
        assert_eq!(c.num_rows(), 2);
        c.validate().unwrap();
        // second call is a no-op
        assert!(!c.dedup_rows(0.0));
    }

    #[test]
    fn retain_rows_reports_removed_mass() {
        let mut c = Component::singleton(
            f(1, 0),
            vec![(val("a"), 0.3), (val("b"), 0.3), (val("c"), 0.4)],
        );
        let removed = c.retain_rows(|r| r.cell(0) != &val("b"));
        assert!((removed - 0.3).abs() < 1e-12);
        assert_eq!(c.num_rows(), 2);
        c.renormalize();
        c.validate().unwrap();
        // dict garbage from the deleted row is compacted away
        assert_eq!(c.dict(0).len(), 2);
    }

    #[test]
    fn add_column_appends() {
        let mut c = paper_component();
        c.add_column(Field::exists(Tid(9)), |r| {
            if r.cell(0) == &val("pregnancy") {
                Cell::Val(Value::Bool(true))
            } else {
                Cell::Bottom
            }
        });
        assert_eq!(c.num_fields(), 3);
        assert!(c.cell(1, 2).is_bottom());
    }

    #[test]
    fn possible_values_skips_bottom() {
        let c = Component::singleton(
            f(1, 0),
            vec![(val("a"), 0.5), (Cell::Bottom, 0.5)],
        );
        assert_eq!(c.possible_values(f(1, 0)), vec![Value::str("a")]);
        assert!(c.possible_values(f(2, 0)).is_empty());
    }

    #[test]
    fn column_scans() {
        let c = Component::singleton(
            f(1, 0),
            vec![(Cell::Bottom, 0.5), (Cell::Bottom, 0.5)],
        );
        assert!(c.column_all_bottom(0));
        assert_eq!(c.column_constant(0), None);
        let k = Component::singleton(f(1, 0), vec![(val("k"), 0.4), (val("k"), 0.6)]);
        assert!(!k.column_all_bottom(0));
        assert_eq!(k.column_constant(0), Some(&val("k")));
    }

    #[test]
    fn compact_shrinks_dictionary_after_bulk_delete() {
        // 6 distinct values interned, then a bulk delete: every row but one
        // is ⊥-marked. The dictionary keeps the orphaned cells (it only
        // ever grows) until compact() garbage-collects them.
        let alts: Vec<(Cell, f64)> = (0..6)
            .map(|i| (Cell::Val(Value::Int(i)), 1.0 / 6.0))
            .collect();
        let mut c = Component::singleton(f(1, 0), alts);
        assert_eq!(c.dict(0).len(), 6);
        for row in 1..6 {
            assert!(c.set_bottom(row, 0));
        }
        // ⊥ joined the dictionary; the five displaced values are orphaned
        assert_eq!(c.dict(0).len(), 7);
        assert!(c.compact());
        assert_eq!(c.dict(0).len(), 2, "only Int(0) and ⊥ are live");
        assert_eq!(c.cell(0, 0), &Cell::Val(Value::Int(0)));
        assert!(c.cell(3, 0).is_bottom());
        assert_eq!(c.possible_values(f(1, 0)), vec![Value::Int(0)]);
        // second call is a no-op
        assert!(!c.compact());
    }

    #[test]
    fn compact_preserves_merge_garbage_semantics() {
        // product() shares dictionaries, so garbage survives a merge and
        // compaction afterwards must not disturb row data
        let mut a = Component::singleton(f(1, 0), vec![(val("x"), 0.5), (val("y"), 0.5)]);
        a.set_bottom(1, 0); // orphan "y"
        let b = Component::singleton(f(2, 0), vec![(val("p"), 0.3), (val("q"), 0.7)]);
        let mut prod = a.product(&b);
        let before: Vec<CompRow> = prod.rows();
        assert!(prod.compact());
        assert_eq!(prod.rows(), before);
        assert_eq!(prod.dict(0).len(), 2, "x and ⊥; y collected");
    }

    #[test]
    fn col_of_finds_fields() {
        let c = paper_component();
        assert_eq!(c.col_of(f(1, 1)), Some(1));
        assert_eq!(c.col_of(f(2, 0)), None);
    }
}
