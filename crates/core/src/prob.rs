//! Confidence computation — the paper's `prob()` construct.
//!
//! "asking for the probability of the ultrasound test being recommended
//! [...] would retrieve [...] the value 0.4. [...] In case the ultrasound
//! test is recommended in several worlds, then the answer to our query
//! would be computed by summing up the probabilities of this event over all
//! such worlds." (paper §2)
//!
//! Components are independent random variables, so the probability of an
//! event that touches only some components can be computed by enumerating
//! the joint choices of exactly those components. Template tuples are first
//! clustered by shared components; an answer's confidence multiplies across
//! clusters as `1 − ∏(1 − P_cluster)`. Clusters whose joint choice space
//! exceeds a cap are estimated by Monte-Carlo sampling (deterministic
//! xorshift seed), with the estimate flagged in [`Confidence::exact`].
//!
//! # Hot-path layout
//!
//! Cluster evaluation resolves every tuple's field locations **once** into
//! a `ResolvedTuple` (certain values prefilled, open fields as direct
//! `(position, component, column)` triples), then walks the joint choice
//! space with a single **dense choice vector** indexed by component id —
//! no per-world `HashMap`, no per-cell field-map lookups. The sampler
//! draws rows through precomputed cumulative-probability tables.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use maybms_obs::registry::DURATION_US_BOUNDS;
use maybms_obs::{Counter, Histogram};
use maybms_relational::{Error, Result, Tuple, Value};

use crate::cell::Cell;
use crate::exec::WorkerPool;
use crate::factorize::Uf;
use crate::field::{Field, Tid};
use crate::wsd::{Existence, TemplateCell, Wsd};

/// Confidence-computation counters, resolved once.
struct ProbMetrics {
    calls: Arc<Counter>,
    duration_us: Arc<Histogram>,
}

fn metrics() -> &'static ProbMetrics {
    static M: OnceLock<ProbMetrics> = OnceLock::new();
    M.get_or_init(|| ProbMetrics {
        calls: maybms_obs::counter("prob.confidence_calls"),
        duration_us: maybms_obs::histogram("prob.confidence_us", DURATION_US_BOUNDS),
    })
}

/// Options for confidence computation.
#[derive(Debug, Clone, Copy)]
pub struct ProbOptions {
    /// Maximum joint choice count per cluster for exact computation.
    pub exact_cap: u64,
    /// Monte-Carlo samples per cluster beyond the cap.
    pub mc_samples: u32,
    /// RNG seed for the sampler.
    pub seed: u64,
}

impl Default for ProbOptions {
    fn default() -> Self {
        ProbOptions { exact_cap: 1 << 20, mc_samples: 200_000, seed: 0x9e3779b97f4a7c15 }
    }
}

/// A confidence result: the answer tuple, its probability and whether the
/// number is exact or a Monte-Carlo estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Confidence {
    pub tuple: Tuple,
    pub p: f64,
    pub exact: bool,
}

/// Exact-by-default tuple confidence: every possible answer tuple of `rel`
/// with `P(tuple ∈ rel)`.
pub fn tuple_confidence(wsd: &Wsd, rel: &str) -> Result<Vec<(Tuple, f64)>> {
    tuple_confidence_in(wsd, rel, WorkerPool::sequential())
}

/// [`tuple_confidence`] on a worker pool.
pub fn tuple_confidence_in(
    wsd: &Wsd,
    rel: &str,
    pool: &WorkerPool,
) -> Result<Vec<(Tuple, f64)>> {
    Ok(tuple_confidence_opts_in(wsd, rel, ProbOptions::default(), pool)?
        .into_iter()
        .map(|c| (c.tuple, c.p))
        .collect())
}

/// Tuples certain to be in `rel` (confidence 1 within `1e-9`).
pub fn certain_tuples(wsd: &Wsd, rel: &str) -> Result<Vec<Tuple>> {
    certain_tuples_in(wsd, rel, WorkerPool::sequential())
}

/// [`certain_tuples`] on a worker pool.
pub fn certain_tuples_in(wsd: &Wsd, rel: &str, pool: &WorkerPool) -> Result<Vec<Tuple>> {
    Ok(tuple_confidence_in(wsd, rel, pool)?
        .into_iter()
        .filter(|(_, p)| (*p - 1.0).abs() < 1e-9)
        .map(|(t, _)| t)
        .collect())
}

/// Tuples possible in `rel` (confidence > 0).
pub fn possible_tuples(wsd: &Wsd, rel: &str) -> Result<Vec<Tuple>> {
    possible_tuples_in(wsd, rel, WorkerPool::sequential())
}

/// [`possible_tuples`] on a worker pool.
pub fn possible_tuples_in(wsd: &Wsd, rel: &str, pool: &WorkerPool) -> Result<Vec<Tuple>> {
    Ok(tuple_confidence_in(wsd, rel, pool)?.into_iter().map(|(t, _)| t).collect())
}

/// Expected cardinality of `rel` under set semantics:
/// `E[|rel|] = Σ_v P(v ∈ rel)` by linearity of expectation.
pub fn expected_count(wsd: &Wsd, rel: &str) -> Result<f64> {
    expected_count_in(wsd, rel, WorkerPool::sequential())
}

/// [`expected_count`] on a worker pool.
pub fn expected_count_in(wsd: &Wsd, rel: &str, pool: &WorkerPool) -> Result<f64> {
    Ok(tuple_confidence_in(wsd, rel, pool)?.iter().map(|(_, p)| p).sum())
}

/// Expected sum of column `col` over `rel` (set semantics):
/// `E[Σ_{t∈rel} t.col] = Σ_v v.col · P(v ∈ rel)`. NULLs contribute 0.
pub fn expected_sum(wsd: &Wsd, rel: &str, col: &str) -> Result<f64> {
    expected_sum_in(wsd, rel, col, WorkerPool::sequential())
}

/// [`expected_sum`] on a worker pool.
pub fn expected_sum_in(wsd: &Wsd, rel: &str, col: &str, pool: &WorkerPool) -> Result<f64> {
    let idx = wsd.relation(rel)?.schema.index_of(col)?;
    Ok(tuple_confidence_in(wsd, rel, pool)?
        .iter()
        .map(|(t, p)| t[idx].as_f64().unwrap_or(0.0) * p)
        .sum())
}

/// `P(rel is non-empty)` — the confidence of a boolean query.
pub fn nonempty_confidence(wsd: &Wsd, rel: &str) -> Result<f64> {
    nonempty_confidence_in(wsd, rel, WorkerPool::sequential())
}

/// [`nonempty_confidence`] with the per-cluster walks fanned out over
/// `pool`.
pub fn nonempty_confidence_in(wsd: &Wsd, rel: &str, pool: &WorkerPool) -> Result<f64> {
    let m = metrics();
    m.calls.inc();
    #[allow(clippy::disallowed_methods)]
    // maybms-lint: allow(determinism) -- duration histogram observation only; the answer comes from the inner call
    let began = Instant::now();
    let out = nonempty_confidence_inner(wsd, rel, pool);
    m.duration_us.observe_duration(began.elapsed());
    out
}

fn nonempty_confidence_inner(wsd: &Wsd, rel: &str, pool: &WorkerPool) -> Result<f64> {
    let clusters = cluster_tuples(wsd, rel)?;
    if clusters.iter().any(|cl| cl.has_always_certain) {
        return Ok(1.0);
    }
    let resolved = resolve_relation(wsd, rel)?;
    let dists = cluster_distributions(wsd, &clusters, &resolved, ProbOptions::default(), pool)?;
    let mut p_empty_all = 1.0;
    for dist in &dists {
        p_empty_all *= 1.0 - dist.p_any_exists;
    }
    Ok(1.0 - p_empty_all)
}

impl Wsd {
    /// Convenience method: see [`tuple_confidence`].
    pub fn tuple_confidence(&self, rel: &str) -> Result<Vec<(Tuple, f64)>> {
        tuple_confidence(self, rel)
    }
}

/// Full-control variant returning exactness flags.
pub fn tuple_confidence_opts(
    wsd: &Wsd,
    rel: &str,
    opts: ProbOptions,
) -> Result<Vec<Confidence>> {
    tuple_confidence_opts_in(wsd, rel, opts, WorkerPool::sequential())
}

/// [`tuple_confidence_opts`] with the per-cluster distribution walks
/// fanned out over `pool`. Clusters are independent random variables, so
/// their joint-choice enumerations parallelize embarrassingly; the
/// per-value merge runs serially in cluster order, making the result
/// bit-identical to the sequential path at every worker count.
pub fn tuple_confidence_opts_in(
    wsd: &Wsd,
    rel: &str,
    opts: ProbOptions,
    pool: &WorkerPool,
) -> Result<Vec<Confidence>> {
    let m = metrics();
    m.calls.inc();
    #[allow(clippy::disallowed_methods)]
    // maybms-lint: allow(determinism) -- duration histogram observation only; the answer comes from the inner call
    let began = Instant::now();
    let out = tuple_confidence_opts_inner(wsd, rel, opts, pool);
    m.duration_us.observe_duration(began.elapsed());
    out
}

fn tuple_confidence_opts_inner(
    wsd: &Wsd,
    rel: &str,
    opts: ProbOptions,
    pool: &WorkerPool,
) -> Result<Vec<Confidence>> {
    let clusters = cluster_tuples(wsd, rel)?;
    let resolved = resolve_relation(wsd, rel)?;
    let dists = cluster_distributions(wsd, &clusters, &resolved, opts, pool)?;
    // per value: per-cluster probability of "some tuple of the cluster
    // takes this value and exists"
    let mut per_value: HashMap<Tuple, Vec<(f64, bool)>> = HashMap::new();
    for dist in dists {
        // maybms-lint: allow(determinism) -- accumulates into a value-keyed map; visit order cannot affect the per-value products
        for (val, e) in dist.per_value {
            per_value.entry(val).or_default().push((e.p_any, e.exact));
        }
    }
    // maybms-lint: allow(determinism) -- hash order is erased by the sort_by tuple comparison before returning
    let mut out: Vec<Confidence> = per_value
        .into_iter()
        .map(|(tuple, probs)| {
            let mut p_not = 1.0;
            let mut exact = true;
            for (p, ex) in probs {
                p_not *= 1.0 - p;
                exact &= ex;
            }
            Confidence { tuple, p: (1.0 - p_not).min(1.0), exact }
        })
        .collect();
    out.sort_by(|a, b| a.tuple.cmp(&b.tuple));
    Ok(out)
}

// ---------------------------------------------------------------------
// Clustering
// ---------------------------------------------------------------------

struct Cluster {
    tids: Vec<Tid>,
    comps: Vec<usize>,
    /// true iff the cluster contains a fully-certain always-existing tuple
    /// (then every world has it).
    has_always_certain: bool,
}

/// Groups the template tuples of `rel` into clusters connected by shared
/// components; tuples touching no component form singleton "certain"
/// clusters. Connectivity runs on [`Uf`] (shared with
/// [`crate::factorize`]) over dense component ids: one union per
/// (tuple, component) edge, then one grouping pass — no ad-hoc cluster
/// merging, and near-linear on wide answer relations.
fn cluster_tuples(wsd: &Wsd, rel: &str) -> Result<Vec<Cluster>> {
    let tpl = wsd.relation(rel)?;
    // tuple -> component set, with components densely renumbered
    let mut dense: HashMap<usize, usize> = HashMap::new();
    let mut dense_to_comp: Vec<usize> = Vec::new();
    let mut t_comps: Vec<(Tid, Vec<usize>)> = Vec::with_capacity(tpl.tuples.len());
    for t in &tpl.tuples {
        let mut comps: Vec<usize> = Vec::new();
        for (i, c) in t.cells.iter().enumerate() {
            if matches!(c, TemplateCell::Open) {
                let (ci, _) = wsd
                    .field_loc(Field::attr(t.tid, i as u32))
                    .ok_or_else(|| Error::InvalidExpr(format!("unmapped field {}.#{i}", t.tid)))?;
                comps.push(ci);
            }
        }
        if t.exists == Existence::Open {
            let (ci, _) = wsd
                .field_loc(Field::exists(t.tid))
                .ok_or_else(|| Error::InvalidExpr(format!("unmapped ∃ of {}", t.tid)))?;
            comps.push(ci);
        }
        comps.sort_unstable();
        comps.dedup();
        for &c in &comps {
            dense.entry(c).or_insert_with(|| {
                dense_to_comp.push(c);
                dense_to_comp.len() - 1
            });
        }
        t_comps.push((t.tid, comps));
    }

    let mut uf = Uf::new(dense_to_comp.len());
    for (_, comps) in &t_comps {
        for w in comps.windows(2) {
            uf.union(dense[&w[0]], dense[&w[1]]);
        }
    }

    // one cluster per union-find root, in first-seen tuple order
    let mut cluster_of_root: HashMap<usize, usize> = HashMap::new();
    let mut clusters: Vec<Cluster> = Vec::new();
    for (tid, comps) in &t_comps {
        if comps.is_empty() {
            clusters.push(Cluster {
                tids: vec![*tid],
                comps: Vec::new(),
                has_always_certain: true,
            });
            continue;
        }
        let root = uf.find(dense[&comps[0]]);
        let cid = *cluster_of_root.entry(root).or_insert_with(|| {
            clusters.push(Cluster {
                tids: Vec::new(),
                comps: Vec::new(),
                has_always_certain: false,
            });
            clusters.len() - 1
        });
        clusters[cid].tids.push(*tid);
    }
    // attach each component to its root's cluster, in dense (first-seen)
    // order so the enumeration order stays deterministic
    for (d, &comp) in dense_to_comp.iter().enumerate() {
        let root = uf.find(d);
        if let Some(&cid) = cluster_of_root.get(&root) {
            clusters[cid].comps.push(comp);
        }
    }
    Ok(clusters)
}

// ---------------------------------------------------------------------
// Per-cluster distribution
// ---------------------------------------------------------------------

struct ValueEntry {
    /// P(some tuple of the cluster exists with this value)
    p_any: f64,
    exact: bool,
}

/// The joint distribution of one cluster's answers.
struct ClusterDist {
    per_value: HashMap<Tuple, ValueEntry>,
    /// P(some tuple of the cluster exists at all).
    p_any_exists: f64,
}

/// One template tuple with every field location resolved ahead of the
/// choice-space walk: certain values prefilled in `base`, open fields as
/// direct `(position, component, column)` triples.
struct ResolvedTuple {
    base: Vec<Value>,
    open: Vec<(usize, usize, usize)>,
    exists: Option<(usize, usize)>,
}

impl ResolvedTuple {
    fn resolve(wsd: &Wsd, tid: Tid, cells: &[TemplateCell], exists: Existence) -> Result<ResolvedTuple> {
        let mut base = Vec::with_capacity(cells.len());
        let mut open = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            match cell {
                TemplateCell::Certain(v) => base.push(v.clone()),
                TemplateCell::Open => {
                    let (c, col) = wsd
                        .field_loc(Field::attr(tid, i as u32))
                        .ok_or_else(|| Error::InvalidExpr(format!("unmapped field {tid}.#{i}")))?;
                    open.push((i, c, col));
                    base.push(Value::Null);
                }
            }
        }
        let exists = match exists {
            Existence::Always => None,
            Existence::Open => Some(
                wsd.field_loc(Field::exists(tid))
                    .ok_or_else(|| Error::InvalidExpr(format!("unmapped ∃ of {tid}")))?,
            ),
        };
        Ok(ResolvedTuple { base, open, exists })
    }

    /// The tuple's value under a dense `choice` (row index per component),
    /// or `None` if it does not exist there.
    fn value_under(&self, wsd: &Wsd, choice: &[usize]) -> Option<Tuple> {
        if let Some((c, col)) = self.exists {
            let comp = wsd.component(c).expect("mapped"); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
            if comp.cell(choice[c], col).is_bottom() {
                return None;
            }
        }
        let mut vals = self.base.clone();
        for &(pos, c, col) in &self.open {
            let comp = wsd.component(c).expect("mapped"); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
            match comp.cell(choice[c], col) {
                Cell::Val(v) => vals[pos] = v.clone(),
                Cell::Bottom => return None,
            }
        }
        Some(Tuple::new(vals))
    }
}

/// Resolves every tuple of `rel` once — one pass over the template,
/// shared by all clusters.
fn resolve_relation(wsd: &Wsd, rel: &str) -> Result<HashMap<Tid, ResolvedTuple>> {
    let tpl = wsd.relation(rel)?;
    let mut out = HashMap::with_capacity(tpl.tuples.len());
    for t in &tpl.tuples {
        out.insert(t.tid, ResolvedTuple::resolve(wsd, t.tid, &t.cells, t.exists)?);
    }
    Ok(out)
}

/// Evaluates every cluster's distribution, fanning the independent
/// cluster walks out over `pool`. Sequential pools reuse one dense
/// scratch vector across clusters (the zero-allocation hot path);
/// parallel pools give each cluster its own. Results come back in
/// cluster order either way.
fn cluster_distributions(
    wsd: &Wsd,
    clusters: &[Cluster],
    resolved: &HashMap<Tid, ResolvedTuple>,
    opts: ProbOptions,
    pool: &WorkerPool,
) -> Result<Vec<ClusterDist>> {
    if pool.workers() <= 1 || clusters.len() <= 1 {
        let mut choice = vec![0usize; wsd.num_component_slots()];
        return clusters
            .iter()
            .map(|cl| cluster_distribution(wsd, cl, resolved, &mut choice, opts))
            .collect();
    }
    pool.map(clusters, |_, cl| {
        let mut choice = vec![0usize; wsd.num_component_slots()];
        cluster_distribution(wsd, cl, resolved, &mut choice, opts)
    })
    .into_iter()
    .collect()
}

/// Enumerates (or samples) the joint choices of the cluster's components and
/// returns, per answer value, P(some cluster tuple exists with that value).
/// `choice` is a caller-owned dense scratch vector (one slot per component
/// slot) reused across clusters.
fn cluster_distribution(
    wsd: &Wsd,
    cl: &Cluster,
    resolved: &HashMap<Tid, ResolvedTuple>,
    choice: &mut [usize],
    opts: ProbOptions,
) -> Result<ClusterDist> {
    let mut dist = ClusterDist { per_value: HashMap::new(), p_any_exists: 0.0 };
    let tuples: Vec<&ResolvedTuple> = cl
        .tids
        .iter()
        .map(|tid| {
            resolved
                .get(tid)
                .ok_or_else(|| Error::InvalidExpr(format!("cluster tuple {tid} not found")))
        })
        .collect::<Result<_>>()?;

    if cl.comps.is_empty() {
        // fully certain tuples
        for t in &tuples {
            debug_assert!(t.open.is_empty(), "certain cluster");
            dist.per_value
                .insert(Tuple::new(t.base.clone()), ValueEntry { p_any: 1.0, exact: true });
        }
        dist.p_any_exists = 1.0;
        return Ok(dist);
    }

    let mut joint: u64 = 1;
    for &c in &cl.comps {
        let rows = wsd
            .component(c)
            .ok_or_else(|| Error::InvalidExpr(format!("dead component {c}")))?
            .num_rows() as u64;
        joint = joint.saturating_mul(rows);
    }

    for &c in &cl.comps {
        choice[c] = 0;
    }
    if joint <= opts.exact_cap {
        enumerate_cluster(wsd, cl, &tuples, choice, &mut dist)?;
    } else {
        sample_cluster(wsd, cl, &tuples, choice, &mut dist, opts)?;
    }
    Ok(dist)
}

fn enumerate_cluster(
    wsd: &Wsd,
    cl: &Cluster,
    tuples: &[&ResolvedTuple],
    choice: &mut [usize],
    dist: &mut ClusterDist,
) -> Result<()> {
    let widths: Vec<usize> = cl
        .comps
        .iter()
        .map(|&c| wsd.component(c).expect("live").num_rows()) // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
        .collect();
    // the dense choice vector is driven in place by the odometer — no
    // per-choice map
    let mut present: Vec<Tuple> = Vec::new();
    loop {
        let mut p = 1.0;
        for &c in &cl.comps {
            p *= wsd.component(c).expect("live").prob(choice[c]); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
        }
        // distinct values present under this choice
        present.clear();
        for t in tuples {
            if let Some(v) = t.value_under(wsd, choice) {
                if !present.contains(&v) {
                    present.push(v);
                }
            }
        }
        if !present.is_empty() {
            dist.p_any_exists += p;
        }
        for v in present.drain(..) {
            let e = dist
                .per_value
                .entry(v)
                .or_insert(ValueEntry { p_any: 0.0, exact: true });
            e.p_any += p;
        }

        let mut k = cl.comps.len();
        loop {
            if k == 0 {
                return Ok(());
            }
            k -= 1;
            let c = cl.comps[k];
            choice[c] += 1;
            if choice[c] < widths[k] {
                break;
            }
            choice[c] = 0;
        }
    }
}

/// xorshift64* — deterministic, dependency-free sampler.
struct XorShift(u64);
impl XorShift {
    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        let bits = x.wrapping_mul(0x2545F4914F6CDD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }
}

fn sample_cluster(
    wsd: &Wsd,
    cl: &Cluster,
    tuples: &[&ResolvedTuple],
    choice: &mut [usize],
    dist: &mut ClusterDist,
    opts: ProbOptions,
) -> Result<()> {
    let mut rng = XorShift(opts.seed | 1);
    let n = opts.mc_samples.max(1);
    let inv = 1.0 / n as f64;
    // cumulative probability table per cluster component, computed once
    let cum: Vec<Vec<f64>> = cl
        .comps
        .iter()
        .map(|&c| {
            let comp = wsd.component(c).expect("live"); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
            let mut acc = 0.0;
            comp.probs()
                .iter()
                .map(|&p| {
                    acc += p;
                    acc
                })
                .collect()
        })
        .collect();
    let mut present: Vec<Tuple> = Vec::new();
    for _ in 0..n {
        for (k, &c) in cl.comps.iter().enumerate() {
            let u = rng.next_f64();
            let table = &cum[k];
            // binary search the cumulative table; partition_point returns
            // the first row whose cumulative mass exceeds u
            let pick = table.partition_point(|&acc| acc <= u).min(table.len() - 1);
            choice[c] = pick;
        }
        present.clear();
        for t in tuples {
            if let Some(v) = t.value_under(wsd, choice) {
                if !present.contains(&v) {
                    present.push(v);
                }
            }
        }
        if !present.is_empty() {
            dist.p_any_exists += inv;
        }
        for v in present.drain(..) {
            let e = dist
                .per_value
                .entry(v)
                .or_insert(ValueEntry { p_any: 0.0, exact: false });
            e.p_any += inv;
            e.exact = false;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Query;
    use crate::examples::medical_wsd;
    use maybms_relational::{ColumnType, Expr, Schema};
    use maybms_worldset::OrSetCell;

    /// Brute-force oracle for confidence.
    fn oracle_confidence(wsd: &Wsd, rel: &str) -> Vec<(Tuple, f64)> {
        wsd.to_worldset(1_000_000).unwrap().tuple_confidence(rel)
    }

    fn assert_matches_oracle(wsd: &Wsd, rel: &str) {
        let fast = tuple_confidence(wsd, rel).unwrap();
        let slow = oracle_confidence(wsd, rel);
        assert_eq!(fast.len(), slow.len(), "answer sets differ: {fast:?} vs {slow:?}");
        for ((t1, p1), (t2, p2)) in fast.iter().zip(&slow) {
            assert_eq!(t1, t2);
            assert!((p1 - p2).abs() < 1e-9, "{t1:?}: {p1} vs {p2}");
        }
    }

    #[test]
    fn paper_prob_query() {
        // prob() of ultrasound being recommended in pregnancy diagnosis: 0.4
        let wsd = medical_wsd();
        let q = Query::table("R")
            .select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")))
            .project(["test"]);
        let ans = q.eval(&wsd).unwrap();
        let conf = tuple_confidence(&ans, "result").unwrap();
        assert_eq!(conf.len(), 1);
        assert!((conf[0].1 - 0.4).abs() < 1e-12);
        assert_matches_oracle(&ans, "result");
    }

    #[test]
    fn confidence_on_base_relation_matches_oracle() {
        let wsd = medical_wsd();
        assert_matches_oracle(&wsd, "R");
    }

    #[test]
    fn independent_duplicates_combine() {
        // two independent tuples that can both be value 1:
        // P(1 present) = 1 - (1-0.5)(1-0.5) = 0.75
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        for _ in 0..2 {
            w.push_orset(
                "r",
                vec![OrSetCell::weighted(vec![(Value::Int(1), 0.5), (Value::Int(2), 0.5)]).unwrap()],
            )
            .unwrap();
        }
        let conf = tuple_confidence(&w, "r").unwrap();
        let one = conf.iter().find(|(t, _)| t[0] == Value::Int(1)).unwrap();
        assert!((one.1 - 0.75).abs() < 1e-12);
        assert_matches_oracle(&w, "r");
    }

    #[test]
    fn certain_and_possible() {
        let wsd = medical_wsd();
        let certain = certain_tuples(&wsd, "R").unwrap();
        assert_eq!(certain.len(), 1); // the obesity record
        assert_eq!(certain[0][0], Value::str("obesity"));
        let possible = possible_tuples(&wsd, "R").unwrap();
        assert_eq!(possible.len(), 5); // 4 r1-variants + obesity
    }

    #[test]
    fn nonempty_confidence_of_selection() {
        let wsd = medical_wsd();
        let q = Query::table("R").select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")));
        let ans = q.eval(&wsd).unwrap();
        let p = nonempty_confidence(&ans, "result").unwrap();
        assert!((p - 0.4).abs() < 1e-9);
        // selecting the certain tuple: always nonempty
        let q2 = Query::table("R").select(Expr::col("diagnosis").eq(Expr::lit("obesity")));
        let ans2 = q2.eval(&wsd).unwrap();
        assert!((nonempty_confidence(&ans2, "result").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_fallback_is_close() {
        // big cluster: force sampling with a tiny exact cap
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        for _ in 0..4 {
            w.push_orset(
                "r",
                vec![OrSetCell::weighted(vec![(Value::Int(1), 0.5), (Value::Int(2), 0.5)]).unwrap()],
            )
            .unwrap();
        }
        // correlate everything so it is one cluster
        let live = w.live_components();
        w.merge_components(&live).unwrap();
        let opts = ProbOptions { exact_cap: 1, mc_samples: 60_000, seed: 42 };
        let est = tuple_confidence_opts(&w, "r", opts).unwrap();
        let exact = oracle_confidence(&w, "r");
        for c in &est {
            assert!(!c.exact);
            let (_, p) = exact.iter().find(|(t, _)| *t == c.tuple).unwrap();
            assert!((c.p - p).abs() < 0.02, "MC estimate too far: {} vs {}", c.p, p);
        }
    }
}
