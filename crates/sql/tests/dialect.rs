//! Dialect-wide integration tests: every statement form parses, executes,
//! and round-trips sensibly against a live session.

use maybms_relational::Value;
use maybms_sql::{parse, QueryResult, Session, Statement};

fn fresh() -> Session {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary INT); \
         CREATE TABLE dept (dname TEXT, budget INT); \
         INSERT INTO emp VALUES \
           (1, 'ann', {'eng': 0.8, 'ops': 0.2}, 100), \
           (2, 'bob', 'eng', {90: 0.5, 110: 0.5}), \
           (3, 'cyd', 'ops', 80); \
         INSERT INTO dept VALUES ('eng', 1000), ('ops', 500)",
    )
    .expect("setup");
    s
}

#[test]
fn every_statement_form_parses() {
    let statements = [
        "SELECT * FROM emp",
        "SELECT POSSIBLE name FROM emp",
        "SELECT CERTAIN name, dept FROM emp",
        "SELECT name, PROB() FROM emp WHERE dept = 'eng'",
        "SELECT PROB() FROM emp WHERE salary > 100",
        "SELECT EXPECTED COUNT() FROM emp WHERE dept = 'eng'",
        "SELECT EXPECTED SUM(salary) FROM emp",
        "SELECT DISTINCT dept FROM emp",
        "SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.dname",
        "SELECT name FROM emp WHERE salary >= 90 AND dept IN ('eng', 'ops')",
        "SELECT name FROM emp WHERE NOT (salary < 90) OR name IS NULL",
        "SELECT name FROM emp UNION SELECT dname FROM dept",
        "SELECT name FROM emp EXCEPT SELECT name FROM emp WHERE dept = 'ops'",
        "SELECT POSSIBLE name, PROB() FROM emp HAVING PROB() > 0.5 ORDER BY prob DESC LIMIT 3",
        "CREATE TABLE t2 (x INT)",
        "DROP TABLE dept",
        "INSERT INTO emp VALUES (4, 'dee', 'eng', 95)",
        "REPAIR KEY emp(id)",
        "REPAIR FD emp: dept -> salary",
        "REPAIR CHECK emp: salary > 0",
        "EXPLAIN SELECT name FROM emp WHERE dept = 'eng'",
        "SHOW TABLES",
    ];
    for sql in statements {
        parse(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    }
}

#[test]
fn execution_smoke_for_all_query_forms() {
    let mut s = fresh();
    type Check = fn(&QueryResult) -> bool;
    let cases: &[(&str, Check)] = &[
        ("SELECT * FROM emp", |r| r.world_set().is_some()),
        ("SELECT POSSIBLE name FROM emp", |r| r.table().map(|t| t.len()) == Some(3)),
        ("SELECT CERTAIN name FROM emp", |r| r.table().map(|t| t.len()) == Some(3)),
        ("SELECT PROB() FROM emp WHERE dept = 'ops'", |r| {
            r.table().is_some()
        }),
        ("SELECT EXPECTED COUNT() FROM emp", |r| {
            r.table()
                .map(|t| (t.rows()[0][0].as_f64().unwrap() - 3.0).abs() < 1e-9)
                .unwrap_or(false)
        }),
        ("SHOW TABLES", |r| matches!(r, QueryResult::Text(t) if t.contains("emp"))),
    ];
    for (sql, check) in cases {
        let r = s.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert!(check(&r), "unexpected result for {sql}: {r:?}");
    }
}

#[test]
fn uncertainty_flows_through_joins() {
    let mut s = fresh();
    // ann's dept is uncertain: joining against dept budgets spreads it
    let r = s
        .execute(
            "SELECT POSSIBLE e.name, d.budget, PROB() FROM emp e, dept d \
             WHERE e.dept = d.dname AND e.name = 'ann'",
        )
        .unwrap();
    let t = r.table().unwrap();
    assert_eq!(t.len(), 2);
    let eng = t.rows().iter().find(|r| r[1] == Value::Int(1000)).unwrap();
    assert!((eng[2].as_f64().unwrap() - 0.8).abs() < 1e-9);
    let ops = t.rows().iter().find(|r| r[1] == Value::Int(500)).unwrap();
    assert!((ops[2].as_f64().unwrap() - 0.2).abs() < 1e-9);
}

#[test]
fn expected_salary_combines_orset_weights() {
    let mut s = fresh();
    let r = s.execute("SELECT EXPECTED SUM(salary) FROM emp").unwrap();
    let v = r.table().unwrap().rows()[0][0].as_f64().unwrap();
    // 100 + (0.5·90 + 0.5·110) + 80 = 280
    assert!((v - 280.0).abs() < 1e-9, "got {v}");
}

#[test]
fn repair_fd_makes_depts_consistent() {
    let mut s = fresh();
    // Align cyd's salary with ann's so ops-worlds are FD-consistent.
    s.execute("DROP TABLE emp").unwrap();
    s.execute_script(
        "CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary INT); \
         INSERT INTO emp VALUES \
           (1, 'ann', {'eng': 0.8, 'ops': 0.2}, 100), \
           (2, 'bob', 'eng', 90), \
           (3, 'cyd', 'ops', 100)",
    )
    .unwrap();
    // FD dept -> salary: ann in eng would clash with bob (100 vs 90), so
    // only ann-ops worlds survive.
    s.execute("REPAIR FD emp: dept -> salary").unwrap();
    let r = s.execute("SELECT CERTAIN name, dept FROM emp WHERE name = 'ann'").unwrap();
    let t = r.table().unwrap();
    assert_eq!(t.len(), 1);
    assert_eq!(t.rows()[0][1], Value::str("ops"));
}

#[test]
fn world_set_result_inspectable() {
    let mut s = fresh();
    let r = s.execute("SELECT name, salary FROM emp WHERE salary > 95").unwrap();
    let wsd = r.world_set().unwrap();
    // bob's salary decides membership: 2 worlds for bob × ann certain
    let ws = wsd.to_worldset(1000).unwrap();
    assert_eq!(ws.merged().len(), 2);
    let conf = wsd.tuple_confidence("result").unwrap();
    let bob110 = conf
        .iter()
        .find(|(t, _)| t[0] == Value::str("bob") && t[1] == Value::Int(110));
    assert!((bob110.unwrap().1 - 0.5).abs() < 1e-9);
}

#[test]
fn errors_do_not_corrupt_the_session() {
    let mut s = fresh();
    assert!(s.execute("SELECT nope FROM emp").is_err());
    assert!(s.execute("INSERT INTO emp VALUES (9)").is_err());
    assert!(s.execute("REPAIR CHECK emp: salary < 0").is_err()); // unsatisfiable
    // the session still answers correctly afterwards
    let r = s.execute("SELECT CERTAIN name FROM emp").unwrap();
    assert_eq!(r.table().unwrap().len(), 3);
    s.wsd().validate().unwrap();
}

#[test]
fn statement_debug_forms() {
    // parse() returns structured statements usable programmatically
    let stmt = parse("SELECT POSSIBLE a FROM r").unwrap();
    assert!(matches!(stmt, Statement::Select(_)));
    let stmt = parse("REPAIR KEY r(a, b)").unwrap();
    assert!(matches!(stmt, Statement::Repair(_)));
}
