//! # maybms-sql
//!
//! The query language of MayBMS-rs: "a natural extension of SQL with
//! special constructs that deal with incompleteness and probabilities"
//! (paper §2), compiled to relational algebra over world-set
//! decompositions and optimized with classic rewrite rules (the demo shows
//! "the optimized query plans produced by MayBMS").
//!
//! ```
//! use maybms_sql::session::medical_session;
//!
//! let mut s = medical_session();
//! // the paper's query, plus the probability construct
//! let r = s.execute("SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy'").unwrap();
//! let t = r.table().unwrap();
//! assert_eq!(t.rows()[0][1], maybms_relational::Value::Float(0.4));
//! ```

//!
//! Sessions can be **durable**: [`Session::open`] backs a session with a
//! snapshot + write-ahead-log pair (`maybms-storage`), every committed
//! mutation is logged ([`wire`] is the record format), and the
//! `CHECKPOINT` statement compacts the log into a fresh snapshot
//! (incremental — changed pages only — when possible). Durable databases
//! replicate: [`replication`] ships the WAL to read-only followers.
//!
//! The layer-by-layer picture (and the invariants each layer's tests
//! enforce) is in `docs/ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod ast;
pub mod group;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod replication;
pub mod session;
pub mod wire;

pub use ast::Statement;
pub use group::{CommitAck, CommitHandle, GroupCommitConfig, GroupCommitter};
pub use parser::{parse, parse_counting_params, parse_script};
pub use replication::{Backoff, Primary, Replica};
pub use session::{
    Prepared, QueryResult, Session, SessionError, SessionResult, Transaction, WsdSnapshot,
};
