//! Abstract syntax of the MayBMS SQL dialect.
//!
//! The dialect is "a natural extension of SQL with special constructs that
//! deal with incompleteness and probabilities" (paper §2):
//!
//! * `SELECT ... FROM ... WHERE ...` — evaluated *in every world*; the
//!   answer is itself a world-set (returned as a decomposition).
//! * `SELECT POSSIBLE ...` / `SELECT CERTAIN ...` — possible/certain
//!   answers, as ordinary relations.
//! * `PROB()` in the select clause — the answer tuples with their
//!   probabilities; `SELECT PROB() FROM ...` alone gives the probability
//!   that the answer is non-empty.
//! * Or-set literals in `INSERT`: `{1, 2}` (uniform) or
//!   `{'a': 0.4, 'b': 0.6}` (weighted).
//! * `REPAIR` statements enforce integrity constraints (data cleaning).

use maybms_relational::{ColumnType, Expr, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query (`SELECT …`, any [`WorldMode`]).
    Select(SelectStmt),
    /// `CREATE TABLE name (col type, …)`.
    CreateTable {
        /// The new relation's name.
        name: String,
        /// Column names and types, in order.
        columns: Vec<(String, ColumnType)>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// The relation to remove (from every world).
        name: String,
    },
    /// `ALTER TABLE a RENAME TO b`.
    RenameTable {
        /// The current name.
        from: String,
        /// The new name (must not exist).
        to: String,
    },
    /// `INSERT INTO t VALUES (…), (…)` — values may be or-set literals,
    /// which introduce uncertainty (new worlds).
    Insert {
        /// The target relation.
        table: String,
        /// The rows, one [`InsertValue`] per column.
        rows: Vec<Vec<InsertValue>>,
    },
    /// `DELETE FROM t [WHERE pred]` — in every world, removes the tuples
    /// of `t` satisfying `pred` (all tuples when absent). A tuple that
    /// *certainly* satisfies the predicate disappears from every world; a
    /// tuple that only *possibly* satisfies it survives exactly in the
    /// worlds where the predicate is false. World probabilities are
    /// untouched (unlike `REPAIR`, which removes whole worlds).
    Delete {
        /// The target relation.
        table: String,
        /// The predicate; `None` deletes every tuple.
        pred: Option<Expr>,
    },
    /// `UPDATE t SET c1 = v1, ... [WHERE pred]` — in every world, rewrites
    /// the listed columns of the tuples satisfying `pred`. Assigned values
    /// are certain scalars (or `?` parameters); predicates see the
    /// pre-update values.
    Update {
        /// The target relation.
        table: String,
        /// `col = value` assignments, in order.
        set: Vec<(String, InsertValue)>,
        /// The predicate; `None` updates every tuple.
        pred: Option<Expr>,
    },
    /// `REPAIR KEY r(c1, c2)` | `REPAIR FD r: a, b -> c` | `REPAIR CHECK r: pred`
    Repair(RepairStmt),
    /// `EXPLAIN [ANALYZE] <statement>` — print the logical, optimized and
    /// physical plans (the physical one annotated with per-node cardinality
    /// and cost estimates) instead of returning rows. With `ANALYZE` the
    /// statement is also executed and each physical node additionally shows
    /// the number of template tuples it actually produced.
    Explain {
        /// The statement whose plans are printed.
        stmt: Box<Statement>,
        /// Execute too and report actual per-node cardinalities.
        analyze: bool,
    },
    /// `SHOW TABLES` — list the relation names.
    ShowTables,
    /// `SHOW METRICS [LIKE 'pattern']` — one row per metric of the
    /// process-global observability registry (`name, kind, value`),
    /// optionally filtered by a SQL `LIKE` pattern (`%`/`_` wildcards)
    /// on the metric name.
    ShowMetrics {
        /// The `LIKE` pattern, if given.
        like: Option<String>,
    },
    /// `SHOW SLOW QUERIES` — the session's slow-query ring buffer, one
    /// row per logged statement (oldest first).
    ShowSlowQueries,
    /// `SHOW REPLICATION STATUS` — one row describing this session's
    /// replication role and, for a replica, its staleness relative to
    /// the primary (applied LSN, primary LSN, lag, seconds since last
    /// contact).
    ShowReplicationStatus,
    /// `CHECKPOINT [FULL]` — compact the write-ahead log into a fresh
    /// snapshot (requires a session opened on a database file). The write
    /// is incremental (changed pages only) when possible; `FULL` forces a
    /// complete base rewrite and collapses any overlay.
    Checkpoint {
        /// Force a full base rewrite instead of a page-diff overlay.
        full: bool,
    },
    /// `BEGIN [TRANSACTION|WORK]` — open an explicit transaction:
    /// mutations apply to the live decomposition but their log records
    /// are buffered until `COMMIT`.
    Begin,
    /// `COMMIT` — append the transaction's buffered records to the
    /// write-ahead log as one commit group (a single fsync) and close it.
    Commit,
    /// `ROLLBACK` — restore the decomposition as of `BEGIN` and discard
    /// the buffered records.
    Rollback,
    /// `SAVEPOINT name` — mark the current state inside an open
    /// transaction so `ROLLBACK TO name` can return to it without
    /// closing the transaction.
    Savepoint {
        /// The savepoint's name (case-preserved, matched exactly).
        name: String,
    },
    /// `ROLLBACK TO [SAVEPOINT] name` — restore the decomposition and
    /// the transaction's buffered records as of `SAVEPOINT name`. The
    /// transaction stays open; savepoints established after `name` are
    /// discarded, `name` itself remains valid.
    RollbackTo {
        /// The savepoint to return to.
        name: String,
    },
}

/// One value of an INSERT row: certain or an or-set.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertValue {
    /// A single certain value.
    Certain(Value),
    /// `{v1, v2, ...}` — uniform or-set.
    Uniform(Vec<Value>),
    /// `{v1: p1, v2: p2, ...}` — weighted or-set.
    Weighted(Vec<(Value, f64)>),
    /// A `?` placeholder of a prepared statement, by 0-based position.
    Param(u32),
}

/// Quantifier of a SELECT over the world-set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldMode {
    /// Evaluate in every world; result is a decomposition.
    AllWorlds,
    /// Tuples possible in at least one world.
    Possible,
    /// Tuples present in every world.
    Certain,
}

/// An expectation aggregate over the answer world-set: MayBMS's `ECOUNT` /
/// `ESUM` written as `EXPECTED COUNT()` / `EXPECTED SUM(col)`.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpectedAgg {
    /// `EXPECTED COUNT()` — the expected number of answer tuples.
    Count,
    /// `EXPECTED SUM(col)` — the expected sum of a numeric column.
    Sum(String),
}

/// A `SELECT` statement (one side of a set operation).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Which worlds the answer quantifies over.
    pub mode: WorldMode,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// `true` if `PROB()` appears in the select list.
    pub prob: bool,
    /// `EXPECTED COUNT()` / `EXPECTED SUM(col)`, if present.
    pub expected: Option<ExpectedAgg>,
    /// The projection list (`*` or columns).
    pub items: Vec<SelectItem>,
    /// The `FROM` clause: relations (cross product when several).
    pub from: Vec<TableRef>,
    /// The `WHERE` predicate, if any.
    pub where_clause: Option<Expr>,
    /// A trailing `UNION` / `EXCEPT` with another select, if any.
    pub set_op: Option<(SetOp, Box<SelectStmt>)>,
    /// `HAVING PROB() <op> <number>` — confidence threshold on the answers
    /// (requires `PROB()` in the select list).
    pub prob_threshold: Option<(maybms_relational::CmpOp, f64)>,
    /// `ORDER BY col [ASC|DESC], ...` — applies to tabular results
    /// (POSSIBLE / CERTAIN / PROB / EXPECTED).
    pub order_by: Vec<(String, bool)>,
    /// `LIMIT n` — applies to tabular results.
    pub limit: Option<usize>,
}

/// A set operation connecting two selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `UNION` (set semantics, per world).
    Union,
    /// `EXCEPT` (set difference, per world).
    Except,
}

/// One entry of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of the `FROM` product.
    Star,
    /// A plain column (possibly qualified `alias.col`).
    Column(String),
}

/// A relation in the `FROM` clause, with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// The relation name.
    pub name: String,
    /// `FROM name alias` — qualifies column references.
    pub alias: Option<String>,
}

/// A `REPAIR` (data-cleaning) statement: removes the worlds violating an
/// integrity constraint and renormalizes the survivors' probabilities.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairStmt {
    /// `REPAIR KEY r(c1, c2)` — the listed columns form a key.
    Key {
        /// The constrained relation.
        table: String,
        /// The key columns.
        columns: Vec<String>,
    },
    /// `REPAIR FD r: a, b -> c` — a functional dependency.
    Fd {
        /// The constrained relation.
        table: String,
        /// Determinant columns.
        lhs: Vec<String>,
        /// Dependent columns.
        rhs: Vec<String>,
    },
    /// `REPAIR CHECK r: pred` — a per-tuple check constraint.
    Check {
        /// The constrained relation.
        table: String,
        /// The predicate every tuple must satisfy.
        pred: Expr,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_constructs() {
        let s = Statement::Select(SelectStmt {
            mode: WorldMode::Possible,
            distinct: false,
            prob: true,
            expected: None,
            items: vec![SelectItem::Column("test".into())],
            from: vec![TableRef { name: "R".into(), alias: None }],
            where_clause: Some(Expr::col("diagnosis").eq(Expr::lit("pregnancy"))),
            set_op: None,
            prob_threshold: None,
            order_by: Vec::new(),
            limit: None,
        });
        assert!(matches!(s, Statement::Select(_)));
    }
}
