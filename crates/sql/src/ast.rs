//! Abstract syntax of the MayBMS SQL dialect.
//!
//! The dialect is "a natural extension of SQL with special constructs that
//! deal with incompleteness and probabilities" (paper §2):
//!
//! * `SELECT ... FROM ... WHERE ...` — evaluated *in every world*; the
//!   answer is itself a world-set (returned as a decomposition).
//! * `SELECT POSSIBLE ...` / `SELECT CERTAIN ...` — possible/certain
//!   answers, as ordinary relations.
//! * `PROB()` in the select clause — the answer tuples with their
//!   probabilities; `SELECT PROB() FROM ...` alone gives the probability
//!   that the answer is non-empty.
//! * Or-set literals in `INSERT`: `{1, 2}` (uniform) or
//!   `{'a': 0.4, 'b': 0.6}` (weighted).
//! * `REPAIR` statements enforce integrity constraints (data cleaning).

use maybms_relational::{ColumnType, Expr, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    CreateTable { name: String, columns: Vec<(String, ColumnType)> },
    DropTable { name: String },
    /// `ALTER TABLE a RENAME TO b`
    RenameTable { from: String, to: String },
    Insert { table: String, rows: Vec<Vec<InsertValue>> },
    /// `DELETE FROM t [WHERE pred]` — in every world, removes the tuples
    /// of `t` satisfying `pred` (all tuples when absent). A tuple that
    /// *certainly* satisfies the predicate disappears from every world; a
    /// tuple that only *possibly* satisfies it survives exactly in the
    /// worlds where the predicate is false. World probabilities are
    /// untouched (unlike `REPAIR`, which removes whole worlds).
    Delete { table: String, pred: Option<Expr> },
    /// `UPDATE t SET c1 = v1, ... [WHERE pred]` — in every world, rewrites
    /// the listed columns of the tuples satisfying `pred`. Assigned values
    /// are certain scalars (or `?` parameters); predicates see the
    /// pre-update values.
    Update { table: String, set: Vec<(String, InsertValue)>, pred: Option<Expr> },
    /// `REPAIR KEY r(c1, c2)` | `REPAIR FD r: a, b -> c` | `REPAIR CHECK r: pred`
    Repair(RepairStmt),
    Explain(Box<Statement>),
    ShowTables,
    /// `CHECKPOINT` — compact the write-ahead log into a fresh snapshot
    /// (requires a session opened on a database file).
    Checkpoint,
    /// `BEGIN [TRANSACTION|WORK]` — open an explicit transaction:
    /// mutations apply to the live decomposition but their log records
    /// are buffered until `COMMIT`.
    Begin,
    /// `COMMIT` — append the transaction's buffered records to the
    /// write-ahead log as one commit group (a single fsync) and close it.
    Commit,
    /// `ROLLBACK` — restore the decomposition as of `BEGIN` and discard
    /// the buffered records.
    Rollback,
}

/// One value of an INSERT row: certain or an or-set.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertValue {
    Certain(Value),
    /// `{v1, v2, ...}` — uniform or-set.
    Uniform(Vec<Value>),
    /// `{v1: p1, v2: p2, ...}` — weighted or-set.
    Weighted(Vec<(Value, f64)>),
    /// A `?` placeholder of a prepared statement, by 0-based position.
    Param(u32),
}

/// Quantifier of a SELECT over the world-set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldMode {
    /// Evaluate in every world; result is a decomposition.
    AllWorlds,
    /// Tuples possible in at least one world.
    Possible,
    /// Tuples present in every world.
    Certain,
}

/// An expectation aggregate over the answer world-set: MayBMS's `ECOUNT` /
/// `ESUM` written as `EXPECTED COUNT()` / `EXPECTED SUM(col)`.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpectedAgg {
    Count,
    Sum(String),
}

#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub mode: WorldMode,
    pub distinct: bool,
    /// `true` if `PROB()` appears in the select list.
    pub prob: bool,
    /// `EXPECTED COUNT()` / `EXPECTED SUM(col)`, if present.
    pub expected: Option<ExpectedAgg>,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub set_op: Option<(SetOp, Box<SelectStmt>)>,
    /// `HAVING PROB() <op> <number>` — confidence threshold on the answers
    /// (requires `PROB()` in the select list).
    pub prob_threshold: Option<(maybms_relational::CmpOp, f64)>,
    /// `ORDER BY col [ASC|DESC], ...` — applies to tabular results
    /// (POSSIBLE / CERTAIN / PROB / EXPECTED).
    pub order_by: Vec<(String, bool)>,
    /// `LIMIT n` — applies to tabular results.
    pub limit: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Except,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Star,
    /// A plain column (possibly qualified `alias.col`).
    Column(String),
}

#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum RepairStmt {
    Key { table: String, columns: Vec<String> },
    Fd { table: String, lhs: Vec<String>, rhs: Vec<String> },
    Check { table: String, pred: Expr },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_constructs() {
        let s = Statement::Select(SelectStmt {
            mode: WorldMode::Possible,
            distinct: false,
            prob: true,
            expected: None,
            items: vec![SelectItem::Column("test".into())],
            from: vec![TableRef { name: "R".into(), alias: None }],
            where_clause: Some(Expr::col("diagnosis").eq(Expr::lit("pregnancy"))),
            set_op: None,
            prob_threshold: None,
            order_by: Vec::new(),
            limit: None,
        });
        assert!(matches!(s, Statement::Select(_)));
    }
}
