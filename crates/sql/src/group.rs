//! The group-commit writer: one thread owns the durable [`Session`],
//! concurrent submitters hand it whole commit groups, and it coalesces
//! everything queued into **one WAL batch append + one fsync**
//! ([`maybms_storage::Database::append_many`]).
//!
//! This is the write half of the server's concurrency model (the read
//! half is [`Session::snapshot`] / [`Session::view_at`]):
//!
//! * **Serial execution.** The writer applies submitted groups strictly
//!   in the order it dequeues them, each all-or-nothing in memory
//!   (`Session::apply_group`). The committed history is therefore *a*
//!   serial order by construction — the serializability argument is not
//!   a lock-ordering proof but the absence of interleaving.
//! * **Amortized durability.** All groups that succeeded in memory are
//!   appended as consecutive WAL records under a single shared fsync.
//!   With W concurrent writers the per-commit fsync cost tends toward
//!   1/W; `server.group_commit.stmts_per_fsync` records the achieved
//!   batch sizes.
//! * **Ack after the shared fsync, never before.** A submitter's
//!   [`CommitHandle::commit`] returns only once the fsync covering its
//!   group returned. If the batch append fails, the database is
//!   poisoned, in-memory state rolls back to the pre-batch snapshot
//!   (memory again equals the durable prefix), and **every** waiter in
//!   the batch is NACKed — the fsync vouched for none of them, so none
//!   may be acknowledged.
//! * **Snapshot publication.** After every durable batch the writer
//!   publishes an LSN-stamped [`WsdSnapshot`]; readers pick it up in
//!   O(1) and never block the writer.
//!
//! The committer also serves in-process replication for free: the batch
//! append signals `maybms_storage::wal::commit_notify`, so a
//! [`crate::replication::Primary`] tailing the same WAL in this process
//! wakes immediately instead of riding its polling fallback.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use maybms_obs::registry::SIZE_BOUNDS;
use maybms_obs::{Counter, Histogram};
use maybms_relational::Error;

use crate::ast::Statement;
use crate::session::{QueryResult, Session, SessionError, WsdSnapshot};
use crate::wire;

/// Handles of the group-commit metrics, resolved once.
struct GroupMetrics {
    /// Commit groups durably committed (`server.group_commit.groups`).
    groups: Arc<Counter>,
    /// Statements covered by each fsync — the batching win
    /// (`server.group_commit.stmts_per_fsync`).
    stmts_per_fsync: Arc<Histogram>,
    /// Waiters NACKed by a failed batch append
    /// (`server.group_commit.nacks`).
    nacks: Arc<Counter>,
}

fn metrics() -> &'static GroupMetrics {
    static M: OnceLock<GroupMetrics> = OnceLock::new();
    M.get_or_init(|| GroupMetrics {
        groups: maybms_obs::counter("server.group_commit.groups"),
        stmts_per_fsync: maybms_obs::histogram("server.group_commit.stmts_per_fsync", SIZE_BOUNDS),
        nacks: maybms_obs::counter("server.group_commit.nacks"),
    })
}

/// Tuning knobs for the group-commit writer.
#[derive(Debug, Clone)]
pub struct GroupCommitConfig {
    /// Most commit groups coalesced under one fsync (default 64).
    pub max_batch: usize,
    /// After dequeuing the first pending group, wait up to this long
    /// for more to arrive before fsyncing (default zero: take whatever
    /// is already queued and go). A small window trades commit latency
    /// for larger batches — tests use it to make batching deterministic.
    pub group_window: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> GroupCommitConfig {
        GroupCommitConfig { max_batch: 64, group_window: Duration::ZERO }
    }
}

/// A durable, acknowledged commit: everything a connection needs to
/// answer its client and refresh its read view.
#[derive(Debug)]
pub struct CommitAck {
    /// Per-statement results, in statement order.
    pub results: Vec<QueryResult>,
    /// The LSN the group's WAL record was assigned.
    pub lsn: u64,
    /// The state as of this batch — at least as fresh as `lsn`, so the
    /// committer reads its own write in its next query.
    pub snapshot: WsdSnapshot,
}

/// One queued commit group plus the channel its verdict goes back on.
struct Submission {
    stmts: Vec<Statement>,
    reply: Sender<Result<CommitAck, SessionError>>,
}

/// What flows to the writer thread: commit work, or the stop order.
/// An explicit message (rather than sender disconnect) ends the loop
/// because [`CommitHandle`] is cloneable — any number of outstanding
/// clones may keep the channel alive past shutdown.
enum Msg {
    Submit(Submission),
    Shutdown,
}

/// A cloneable submitter: any thread may [`CommitHandle::commit`] a
/// group or grab the latest published [`CommitHandle::snapshot`].
#[derive(Debug, Clone)]
pub struct CommitHandle {
    tx: Sender<Msg>,
    published: Arc<Mutex<WsdSnapshot>>,
}

impl CommitHandle {
    /// Submits `stmts` as one commit group and blocks until the shared
    /// fsync covering it returned (the ack) or failed (the NACK —
    /// nothing of the group is durable and memory holds none of it).
    /// Every statement must be a mutation; queries belong on snapshots.
    pub fn commit(&self, stmts: Vec<Statement>) -> Result<CommitAck, SessionError> {
        if stmts.is_empty() {
            return Err(SessionError::txn("empty commit group"));
        }
        if let Some(s) = stmts.iter().find(|s| !wire::is_mutation(s)) {
            return Err(SessionError::txn(format!(
                "only mutations can be group-committed (got {s:?}); run queries \
                 against a snapshot view"
            )));
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(Msg::Submit(Submission { stmts, reply: reply_tx }))
            .map_err(|_| writer_gone())?;
        reply_rx.recv().map_err(|_| writer_gone())?
    }

    /// The latest published snapshot (the state as of the last durable
    /// batch). O(1).
    pub fn snapshot(&self) -> WsdSnapshot {
        self.published.lock().expect("published snapshot lock").clone() // maybms-lint: allow(no-panic-in-prod) -- the writer only assigns a fresh snapshot under this lock; a poisoned lock means the writer panicked mid-assign, so fail-stop
    }
}

fn writer_gone() -> SessionError {
    SessionError::storage(Error::Storage(
        "group-commit writer is gone (server shutting down); the commit was not acknowledged"
            .into(),
    ))
}

/// The group-commit engine: owns the durable session on a writer
/// thread; see the module docs for the protocol.
#[derive(Debug)]
pub struct GroupCommitter {
    handle: CommitHandle,
    /// `Some` until [`GroupCommitter::shutdown`], which stops the loop
    /// with an explicit [`Msg::Shutdown`] and joins it.
    writer: Option<JoinHandle<Session>>,
}

impl GroupCommitter {
    /// Spawns the writer thread over `session` (which should be durable
    /// — an in-memory session group-commits with no durability, which
    /// only tests want) with default tuning.
    pub fn spawn(session: Session) -> GroupCommitter {
        GroupCommitter::spawn_with(session, GroupCommitConfig::default())
    }

    /// [`GroupCommitter::spawn`] with explicit tuning.
    pub fn spawn_with(session: Session, cfg: GroupCommitConfig) -> GroupCommitter {
        let published = Arc::new(Mutex::new(session.snapshot()));
        let (tx, rx) = mpsc::channel();
        let thread_published = Arc::clone(&published);
        let writer = std::thread::spawn(move || writer_loop(session, rx, thread_published, cfg));
        GroupCommitter { handle: CommitHandle { tx, published }, writer: Some(writer) }
    }

    /// A cloneable submitter for connection threads.
    pub fn handle(&self) -> CommitHandle {
        self.handle.clone()
    }

    /// Submits one group from this thread — see [`CommitHandle::commit`].
    pub fn commit(&self, stmts: Vec<Statement>) -> Result<CommitAck, SessionError> {
        self.handle.commit(stmts)
    }

    /// The latest published snapshot — see [`CommitHandle::snapshot`].
    pub fn snapshot(&self) -> WsdSnapshot {
        self.handle.snapshot()
    }

    /// Stops the writer (pending submissions are still drained and
    /// committed) and returns the session it owned.
    pub fn shutdown(mut self) -> Session {
        self.take_session().expect("shutdown consumes self, so the writer is still present") // maybms-lint: allow(no-panic-in-prod) -- `writer` is Some from construction until shutdown/Drop, and shutdown takes `self` by value, so it cannot run twice
    }

    fn take_session(&mut self) -> Option<Session> {
        let writer = self.writer.take()?;
        // an explicit stop message, not sender disconnect: cloned
        // handles may outlive this committer and would otherwise keep
        // the writer's recv() alive forever. FIFO ordering guarantees
        // every group submitted before this point is still committed.
        let _ = self.handle.tx.send(Msg::Shutdown);
        match writer.join() {
            Ok(session) => Some(session),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        if self.writer.is_some() {
            drop(self.take_session());
        }
    }
}

/// Dequeues, batches, executes, appends, acks. Returns the session on
/// [`Msg::Shutdown`] or channel disconnect; groups queued before the
/// stop message are still committed (the channel is FIFO).
fn writer_loop(
    mut session: Session,
    rx: Receiver<Msg>,
    published: Arc<Mutex<WsdSnapshot>>,
    cfg: GroupCommitConfig,
) -> Session {
    let mut stopping = false;
    while !stopping {
        let first = match rx.recv() {
            Ok(Msg::Submit(s)) => s,
            Ok(Msg::Shutdown) | Err(_) => return session,
        };
        let mut batch = vec![first];
        if !cfg.group_window.is_zero() {
            // hold the door open briefly so concurrent submitters join
            // this fsync instead of paying their own
            let deadline = Instant::now() + cfg.group_window;
            while batch.len() < cfg.max_batch {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match rx.recv_timeout(left) {
                    Ok(Msg::Submit(s)) => batch.push(s),
                    Ok(Msg::Shutdown) => {
                        stopping = true;
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        while !stopping && batch.len() < cfg.max_batch {
            match rx.try_recv() {
                Ok(Msg::Submit(s)) => batch.push(s),
                Ok(Msg::Shutdown) => stopping = true,
                Err(_) => break,
            }
        }
        run_batch(&mut session, batch, &published);
    }
    session
}

/// Executes one batch: every group all-or-nothing in memory, all
/// surviving groups under one fsync, acks strictly after it.
fn run_batch(session: &mut Session, batch: Vec<Submission>, published: &Arc<Mutex<WsdSnapshot>>) {
    // Fail fast while memory still equals disk — a poisoned store or a
    // degraded session refuses the whole batch before any group applies.
    let refusal = if let Some(reason) = session.poison_reason() {
        Some(format!(
            "database is poisoned ({reason}); writes are refused until it is reopened"
        ))
    } else {
        session
            .degraded_reason()
            .map(|reason| format!("session is degraded ({reason}); commit a successful CHECKPOINT first"))
    };
    if let Some(msg) = refusal {
        for sub in batch {
            metrics().nacks.inc();
            let _ = sub.reply.send(Err(SessionError::storage(Error::Storage(msg.clone()))));
        }
        return;
    }

    let batch_saved = session.snapshot();
    // Apply each group in dequeue order. `survivors[i]` pairs the
    // submission with its results; groups that fail in memory are
    // answered immediately (they rolled back alone, the batch goes on).
    let mut survivors: Vec<(Submission, Vec<QueryResult>)> = Vec::with_capacity(batch.len());
    let mut records: Vec<Vec<u8>> = Vec::with_capacity(batch.len());
    let mut stmt_count = 0usize;
    for sub in batch {
        let encoded: Result<Vec<Vec<u8>>, _> =
            sub.stmts.iter().map(wire::encode_statement).collect();
        let encoded = match encoded {
            Ok(e) => e,
            Err(e) => {
                let _ = sub.reply.send(Err(SessionError::storage(Error::Storage(format!(
                    "commit group could not be encoded for the write-ahead log: {e}"
                )))));
                continue;
            }
        };
        match session.apply_group(&sub.stmts) {
            Ok(results) => {
                stmt_count += sub.stmts.len();
                records.push(wire::encode_commit_group(&encoded));
                survivors.push((sub, results));
            }
            Err(e) => {
                let _ = sub.reply.send(Err(e));
            }
        }
    }
    if records.is_empty() {
        return;
    }

    match session.append_commit_groups(&records) {
        Ok(last_lsn) => {
            // one fsync covered `records.len()` groups; publish, then ack
            metrics().groups.add(records.len() as u64);
            metrics().stmts_per_fsync.observe(stmt_count as u64);
            let snapshot = session.snapshot();
            *published.lock().expect("published snapshot lock") = snapshot.clone(); // maybms-lint: allow(no-panic-in-prod) -- only this writer thread and O(1) readers touch the lock; poison means a reader panicked holding it, so fail-stop
            let first_lsn = (last_lsn + 1).saturating_sub(records.len() as u64);
            for (i, (sub, results)) in survivors.into_iter().enumerate() {
                let ack =
                    CommitAck { results, lsn: first_lsn + i as u64, snapshot: snapshot.clone() };
                let _ = sub.reply.send(Ok(ack));
            }
        }
        Err(e) => {
            // The shared fsync vouched for nobody: roll memory back to
            // the durable prefix and NACK every waiter in the batch.
            // The append already poisoned the store, so later batches
            // are refused at the gate above.
            session.restore_snapshot(&batch_saved);
            for (sub, _) in survivors {
                metrics().nacks.inc();
                let _ = sub.reply.send(Err(SessionError::storage(Error::Storage(format!(
                    "group commit failed; the batch rolled back in memory and the \
                     database is poisoned (writes are refused until it is reopened): {e}"
                )))));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn stmts(sql: &str) -> Vec<Statement> {
        sql.split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| parse(s).expect("parse"))
            .collect()
    }

    #[test]
    fn commits_apply_in_submission_order() {
        let committer = GroupCommitter::spawn(Session::new());
        committer
            .commit(stmts("CREATE TABLE t (x INT)"))
            .expect("create");
        for i in 0..10 {
            committer
                .commit(stmts(&format!("INSERT INTO t VALUES ({i})")))
                .expect("insert");
        }
        let snap = committer.snapshot();
        let mut view = Session::view_at(&snap);
        let rows = view.execute("SELECT CERTAIN x FROM t").expect("select");
        assert_eq!(rows.rows().len(), 10);
        let session = committer.shutdown();
        assert_eq!(session.wsd().relation("t").expect("t").tuples.len(), 10);
    }

    #[test]
    fn failed_group_rolls_back_alone() {
        let committer = GroupCommitter::spawn(Session::new());
        committer.commit(stmts("CREATE TABLE t (x INT)")).expect("create");
        let err = committer
            .commit(stmts("INSERT INTO t VALUES (1); INSERT INTO nosuch VALUES (2)"))
            .expect_err("second statement must fail the group");
        assert!(err.to_string().contains("nosuch"), "unexpected error: {err}");
        // the failed group left nothing behind
        let mut view = Session::view_at(&committer.snapshot());
        let rows = view.execute("SELECT CERTAIN x FROM t").expect("select");
        assert_eq!(rows.rows().len(), 0);
        committer.commit(stmts("INSERT INTO t VALUES (3)")).expect("later commit fine");
        drop(committer);
    }

    #[test]
    fn queries_are_refused() {
        let committer = GroupCommitter::spawn(Session::new());
        let err = committer
            .commit(stmts("SHOW TABLES"))
            .expect_err("queries must not be group-committed");
        assert!(err.to_string().contains("only mutations"), "unexpected error: {err}");
        drop(committer);
    }
}
