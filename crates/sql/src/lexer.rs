//! Tokenizer for the MayBMS SQL dialect.

use std::fmt;

use maybms_relational::Error;

/// A lexical token. Keywords are recognized case-insensitively and carried
/// as `Keyword` with their canonical upper-case spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A reserved word, upper-cased (`SELECT`, `INSERT`, …).
    Keyword(String),
    /// An identifier (relation, column or alias name).
    Ident(String),
    /// 'single-quoted' string literal (with '' escaping).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// Punctuation or an operator.
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{` — opens an or-set literal.
    LBrace,
    /// `}` — closes an or-set literal.
    RBrace,
    /// `,`
    Comma,
    /// `.` — qualifies a column (`alias.col`).
    Dot,
    /// `;` — statement separator.
    Semicolon,
    /// `:` — weights an or-set alternative, introduces REPAIR bodies.
    Colon,
    /// `*` — projection star or multiplication.
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `->` — separates a functional dependency's sides.
    Arrow,
    /// `?` — prepared-statement placeholder.
    Question,
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::LBrace => "{",
            Sym::RBrace => "}",
            Sym::Comma => ",",
            Sym::Dot => ".",
            Sym::Semicolon => ";",
            Sym::Colon => ":",
            Sym::Star => "*",
            Sym::Plus => "+",
            Sym::Minus => "-",
            Sym::Slash => "/",
            Sym::Percent => "%",
            Sym::Eq => "=",
            Sym::Ne => "<>",
            Sym::Lt => "<",
            Sym::Le => "<=",
            Sym::Gt => ">",
            Sym::Ge => ">=",
            Sym::Arrow => "->",
            Sym::Question => "?",
        };
        write!(f, "{s}")
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "IS", "NULL", "AS", "DISTINCT",
    "POSSIBLE", "CERTAIN", "PROB", "CONF", "UNION", "EXCEPT", "CREATE", "TABLE", "INSERT",
    "INTO", "VALUES", "INT", "TEXT", "FLOAT", "BOOL", "TRUE", "FALSE", "EXPLAIN", "REPAIR",
    "KEY", "FD", "CHECK", "SHOW", "TABLES", "COUNT", "SUM", "MIN", "MAX", "AVG", "GROUP", "BY",
    "ORDER", "LIMIT", "EXPECTED", "DROP", "HAVING", "ALTER", "RENAME", "TO", "CHECKPOINT",
    "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "WORK", "DELETE", "UPDATE", "SET", "FULL",
    "ANALYZE", "SAVEPOINT", "METRICS", "SLOW", "QUERIES", "REPLICATION", "STATUS", "LIKE",
];

/// Tokenizes `input`, returning the token list or a lexical error.
pub fn lex(input: &str) -> Result<Vec<Token>, Error> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    // comment to end of line
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                } else if chars.peek() == Some(&'>') {
                    chars.next();
                    out.push(Token::Symbol(Sym::Arrow));
                } else {
                    out.push(Token::Symbol(Sym::Minus));
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(Error::InvalidExpr("unterminated string literal".into()))
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if s.contains('.') {
                    out.push(Token::Float(s.parse().map_err(|e| {
                        Error::InvalidExpr(format!("bad float literal {s}: {e}"))
                    })?));
                } else {
                    out.push(Token::Int(s.parse().map_err(|e| {
                        Error::InvalidExpr(format!("bad int literal {s}: {e}"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let upper = s.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(s));
                }
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        out.push(Token::Symbol(Sym::Le));
                    }
                    Some('>') => {
                        chars.next();
                        out.push(Token::Symbol(Sym::Ne));
                    }
                    _ => out.push(Token::Symbol(Sym::Lt)),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token::Symbol(Sym::Ge));
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token::Symbol(Sym::Ne));
                } else {
                    return Err(Error::InvalidExpr("unexpected '!'".into()));
                }
            }
            _ => {
                chars.next();
                let sym = match c {
                    '(' => Sym::LParen,
                    ')' => Sym::RParen,
                    '{' => Sym::LBrace,
                    '}' => Sym::RBrace,
                    ',' => Sym::Comma,
                    '.' => Sym::Dot,
                    ';' => Sym::Semicolon,
                    ':' => Sym::Colon,
                    '*' => Sym::Star,
                    '+' => Sym::Plus,
                    '/' => Sym::Slash,
                    '%' => Sym::Percent,
                    '=' => Sym::Eq,
                    '?' => Sym::Question,
                    other => {
                        return Err(Error::InvalidExpr(format!("unexpected character '{other}'")))
                    }
                };
                out.push(Token::Symbol(sym));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_idents() {
        let toks = lex("select Test from R where diagnosis = 'pregnancy'").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("Test".into()));
        assert_eq!(toks[4], Token::Keyword("WHERE".into()));
        assert_eq!(toks[6], Token::Symbol(Sym::Eq));
        assert_eq!(toks[7], Token::Str("pregnancy".into()));
    }

    #[test]
    fn numbers() {
        let toks = lex("42 3.25").unwrap();
        assert_eq!(toks, vec![Token::Int(42), Token::Float(3.25)]);
    }

    #[test]
    fn operators() {
        let toks = lex("<= >= <> != -> < >").unwrap();
        use Sym::*;
        let syms: Vec<Sym> = toks
            .iter()
            .map(|t| match t {
                Token::Symbol(s) => *s,
                _ => panic!(),
            })
            .collect();
        assert_eq!(syms, vec![Le, Ge, Ne, Ne, Arrow, Lt, Gt]);
    }

    #[test]
    fn string_escaping_and_comments() {
        let toks = lex("'it''s' -- trailing comment\n 'x'").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
        assert_eq!(toks[1], Token::Str("x".into()));
    }

    #[test]
    fn question_mark_and_txn_keywords() {
        let toks = lex("BEGIN; UPDATE t SET a = ? WHERE b = ?; COMMIT").unwrap();
        assert_eq!(toks[0], Token::Keyword("BEGIN".into()));
        assert_eq!(toks[2], Token::Keyword("UPDATE".into()));
        assert!(toks.contains(&Token::Symbol(Sym::Question)));
        assert_eq!(toks.last(), Some(&Token::Keyword("COMMIT".into())));
    }

    #[test]
    fn orset_literal_tokens() {
        let toks = lex("{1: 0.4, 2: 0.6}").unwrap();
        assert_eq!(toks[0], Token::Symbol(Sym::LBrace));
        assert_eq!(toks[2], Token::Symbol(Sym::Colon));
        assert_eq!(toks.last(), Some(&Token::Symbol(Sym::RBrace)));
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("!x").is_err());
    }
}
