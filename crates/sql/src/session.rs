//! The session: a stateful database holding one decomposition, executing
//! SQL statements against it.
//!
//! Statements run through the full stack: parse → lower → logical
//! optimize → compile to a [`maybms_core::exec::PhysicalPlan`] → execute
//! with the session's [`WorkerPool`]. The pool defaults to the shared
//! process-wide pool (sized by `MAYBMS_WORKERS` or the machine's
//! parallelism); [`Session::with_worker_pool`] overrides it.
//!
//! # Durability
//!
//! A session opened with [`Session::open`] (or made durable with
//! [`Session::attach`]) is backed by a `maybms-storage`
//! [`Database`]: every committed mutation (`CREATE` / `DROP` / `ALTER` /
//! `INSERT` / `REPAIR`) is appended to the write-ahead log *after* it
//! succeeds in memory, and `CHECKPOINT` compacts the log into a fresh
//! snapshot of the whole decomposition (atomic write-new + rename).
//! Reopening after a crash loads the last snapshot and replays the log's
//! committed prefix — the engine is deterministic, so recovery reproduces
//! the exact pre-crash state at any worker count.

use std::path::Path;
use std::sync::Arc;

use maybms_core::chase::{clean, CleaningReport, Constraint};
use maybms_core::codec::{decode_wsd, encode_wsd};
use maybms_core::exec::{compile, explain_physical, global_pool, Executor, WorkerPool};
use maybms_core::prob;
use maybms_core::wsd::Wsd;
use maybms_relational::{Column, ColumnType, Error, Relation, Result, Schema, Tuple, Value};
use maybms_storage::Database;
use maybms_worldset::OrSetCell;

use crate::ast::{InsertValue, RepairStmt, SelectStmt, Statement, WorldMode};
use crate::optimizer::{explain, optimize};
use crate::parser::{parse, parse_script};
use crate::plan::lower_select;
use crate::wire;

/// The outcome of executing one statement.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// A plain (all-worlds) SELECT: the answer is a world-set, returned as
    /// a decomposition whose single relation is `result`.
    WorldSet(Wsd),
    /// POSSIBLE / CERTAIN / PROB() queries return an ordinary relation.
    Table(Relation),
    /// DDL / DML / REPAIR acknowledgement or EXPLAIN text.
    Text(String),
}

impl QueryResult {
    /// The relation, when the result is one.
    pub fn table(&self) -> Option<&Relation> {
        match self {
            QueryResult::Table(r) => Some(r),
            _ => None,
        }
    }

    /// The decomposition, when the result is one.
    pub fn world_set(&self) -> Option<&Wsd> {
        match self {
            QueryResult::WorldSet(w) => Some(w),
            _ => None,
        }
    }
}

/// A MayBMS session: the incomplete database plus execution settings.
#[derive(Debug)]
pub struct Session {
    wsd: Wsd,
    /// Disable to execute unoptimized plans (used by the E3 ablation).
    pub optimize_plans: bool,
    /// Reports from REPAIR statements, latest last.
    pub cleaning_log: Vec<CleaningReport>,
    /// The worker pool physical plans and confidence computation run on.
    pool: Arc<WorkerPool>,
    /// The durable backing store, when this session was opened on (or
    /// attached to) a database file.
    storage: Option<Database>,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Clone for Session {
    /// Clones the in-memory state only: the clone is **detached** from any
    /// database file (two sessions appending to one write-ahead log would
    /// interleave corruptly). Use [`Session::attach`] to give the clone
    /// its own file.
    fn clone(&self) -> Session {
        Session {
            wsd: self.wsd.clone(),
            optimize_plans: self.optimize_plans,
            cleaning_log: self.cleaning_log.clone(),
            pool: self.pool.clone(),
            storage: None,
        }
    }
}

impl Session {
    pub fn new() -> Session {
        Session {
            wsd: Wsd::new(),
            optimize_plans: true,
            cleaning_log: Vec::new(),
            pool: global_pool(),
            storage: None,
        }
    }

    /// Opens (or creates) a durable session on the database at `path`
    /// (conventionally `*.maybms`; the write-ahead log lives next to it
    /// at `<path>.wal`). Recovery runs here: the latest snapshot is
    /// decoded and validated, then the WAL's committed prefix is replayed
    /// — so the returned session holds exactly the state as of the last
    /// committed statement, even after a crash.
    pub fn open(path: impl AsRef<Path>) -> Result<Session> {
        let recovered = Database::open(path)?;
        let wsd = match &recovered.snapshot {
            Some(payload) => decode_wsd(payload)?,
            None => Wsd::new(),
        };
        let mut session = Session::with_wsd(wsd);
        for record in &recovered.records {
            let stmt = wire::decode_statement(record)?;
            // Replay bypasses run(): already-logged statements must not be
            // logged again. Replay failure means a corrupt log (every
            // logged statement succeeded once and the engine is
            // deterministic), so it surfaces as an error.
            session.apply(&stmt).map_err(|e| {
                Error::Storage(format!("WAL replay failed on {stmt:?}: {e}"))
            })?;
        }
        session.storage = Some(recovered.db);
        Ok(session)
    }

    /// Attaches durability to an in-memory session: creates the database
    /// files at `path` and immediately checkpoints the current state.
    /// Refuses to clobber an existing database.
    pub fn attach(&mut self, path: impl AsRef<Path>) -> Result<()> {
        if self.storage.is_some() {
            return Err(Error::Storage(
                "session is already attached to a database file".into(),
            ));
        }
        let recovered = Database::open(path.as_ref())?;
        if recovered.snapshot.is_some()
            || !recovered.records.is_empty()
            || recovered.db.generation() != 0
        {
            return Err(Error::Storage(format!(
                "refusing to attach: {} already holds a database",
                path.as_ref().display()
            )));
        }
        let mut db = recovered.db;
        db.checkpoint(&encode_wsd(&self.wsd))?;
        self.storage = Some(db);
        Ok(())
    }

    /// Whether this session writes through to a database file.
    pub fn is_durable(&self) -> bool {
        self.storage.is_some()
    }

    /// The snapshot generation of the backing store, if attached.
    pub fn storage_generation(&self) -> Option<u64> {
        self.storage.as_ref().map(Database::generation)
    }

    /// Committed WAL bytes (header included), if attached — tests use
    /// this to observe checkpoint compaction.
    pub fn wal_len(&self) -> Option<u64> {
        self.storage.as_ref().map(Database::wal_len)
    }

    /// Disables (or re-enables) the per-statement WAL fsync — see
    /// `maybms_storage::Wal::set_sync`. Benches only; with sync off a
    /// power failure may lose acknowledged statements.
    pub fn set_wal_sync(&mut self, sync: bool) {
        if let Some(db) = &mut self.storage {
            db.set_sync(sync);
        }
    }

    /// A session over an existing decomposition.
    pub fn with_wsd(wsd: Wsd) -> Session {
        Session { wsd, ..Session::new() }
    }

    /// Replaces the worker pool (e.g. `WorkerPool::new(1)` for forced
    /// sequential execution, or a sized pool for scaling sweeps).
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Session {
        self.pool = pool;
        self
    }

    /// The pool this session executes on.
    pub fn worker_pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    pub fn wsd(&self) -> &Wsd {
        &self.wsd
    }

    pub fn wsd_mut(&mut self) -> &mut Wsd {
        &mut self.wsd
    }

    /// Parses and executes one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse(sql)?;
        self.run(&stmt)
    }

    /// Executes a `;`-separated script, returning the last result.
    pub fn execute_script(&mut self, sql: &str) -> Result<QueryResult> {
        let stmts = parse_script(sql)?;
        let mut last = QueryResult::Text("OK".into());
        for s in &stmts {
            last = self.run(s)?;
        }
        Ok(last)
    }

    /// Executes a parsed statement. On a durable session, a mutation that
    /// succeeded in memory is appended to the write-ahead log (and
    /// fsynced) before this returns — once you have the `Ok`, the
    /// statement survives a crash.
    pub fn run(&mut self, stmt: &Statement) -> Result<QueryResult> {
        let result = self.apply(stmt)?;
        if wire::is_mutation(stmt) {
            if let Some(db) = &mut self.storage {
                if let Err(e) = wire::encode_statement(stmt).and_then(|r| db.append(&r)) {
                    // Memory has the mutation but the log does not. Keeping
                    // the file attached would log *later* statements against
                    // a state the disk never saw — permanent divergence and
                    // an unreplayable WAL. Detach instead: durability is
                    // lost loudly, the on-disk prefix stays consistent, and
                    // reopening the path recovers it.
                    self.storage = None;
                    return Err(Error::Storage(format!(
                        "statement applied in memory but could not be committed to the \
                         write-ahead log; database file detached (reopen to recover \
                         the last durable state): {e}"
                    )));
                }
            }
        }
        Ok(result)
    }

    /// Statement dispatch without WAL logging (recovery replays through
    /// this; [`Session::run`] adds the logging).
    fn apply(&mut self, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Select(sel) => self.run_select(sel),
            Statement::CreateTable { name, columns } => {
                let schema = Schema::from_columns(
                    columns
                        .iter()
                        .map(|(n, t)| Column::new(n.clone(), *t))
                        .collect(),
                );
                self.wsd.add_relation(name.clone(), schema)?;
                Ok(QueryResult::Text(format!("created table {name}")))
            }
            Statement::DropTable { name } => {
                self.wsd.remove_relation(name)?;
                maybms_core::normalize::normalize(&mut self.wsd);
                Ok(QueryResult::Text(format!("dropped table {name}")))
            }
            Statement::RenameTable { from, to } => {
                // `rename_relation` restores the source relation when the
                // target name is taken (PR 1 regression), so a failed
                // rename must leave `from` queryable.
                self.wsd.rename_relation(from, to.clone())?;
                Ok(QueryResult::Text(format!("renamed table {from} to {to}")))
            }
            Statement::Insert { table, rows } => {
                // Build and type-check every row before pushing any: an
                // INSERT either applies fully or not at all. (The WAL only
                // records statements that succeeded; a partially applied
                // failure would make replay diverge from memory.)
                let schema = self.wsd.relation(table)?.schema.clone();
                let mut staged = Vec::with_capacity(rows.len());
                for row in rows {
                    let cells = row
                        .iter()
                        .map(|v| match v {
                            InsertValue::Certain(v) => Ok(OrSetCell::certain(v.clone())),
                            InsertValue::Uniform(vs) => OrSetCell::uniform(vs.clone()),
                            InsertValue::Weighted(ws) => OrSetCell::weighted(ws.clone()),
                        })
                        .collect::<Result<Vec<_>>>()?;
                    if cells.len() != schema.len() {
                        return Err(Error::TypeError(format!(
                            "tuple arity {} vs schema {}",
                            cells.len(),
                            schema.len()
                        )));
                    }
                    for (i, c) in cells.iter().enumerate() {
                        for (v, _) in c.alternatives() {
                            if !v.matches_type(schema.column(i).ty) {
                                return Err(Error::TypeError(format!(
                                    "value {v} not valid for column {}",
                                    schema.column(i).name
                                )));
                            }
                        }
                    }
                    staged.push(cells);
                }
                let n = staged.len();
                for cells in staged {
                    self.wsd.push_orset(table, cells)?;
                }
                Ok(QueryResult::Text(format!("inserted {n} tuple(s) into {table}")))
            }
            Statement::Repair(r) => {
                let constraint = match r {
                    RepairStmt::Key { table, columns } => Constraint::Key {
                        rel: table.clone(),
                        cols: columns.clone(),
                    },
                    RepairStmt::Fd { table, lhs, rhs } => Constraint::Fd {
                        rel: table.clone(),
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                    },
                    RepairStmt::Check { table, pred } => Constraint::TupleCheck {
                        rel: table.clone(),
                        pred: pred.clone(),
                    },
                };
                // Chase on a scratch copy: a failing REPAIR (no consistent
                // world) may abort mid-chase, and partial deletions must
                // not leak into session state — the WAL only records
                // statements that fully succeeded, so memory has to be
                // all-or-nothing too.
                let mut cleaned = self.wsd.clone();
                let report = clean(&mut cleaned, &[constraint])?;
                self.wsd = cleaned;
                let msg = format!(
                    "repaired: {} violating row group(s) removed, {:.4} probability mass discarded",
                    report.deleted_rows, report.removed_probability
                );
                self.cleaning_log.push(report);
                Ok(QueryResult::Text(msg))
            }
            Statement::Explain(inner) => match inner.as_ref() {
                Statement::Select(sel) => {
                    let raw = lower_select(sel)?;
                    let opt = optimize(&raw, &self.wsd)?;
                    let chosen = if self.optimize_plans { &opt } else { &raw };
                    let phys = compile(chosen, &self.wsd)?;
                    Ok(QueryResult::Text(format!(
                        "-- logical plan\n{}-- optimized plan\n{}-- physical plan (workers={})\n{}",
                        explain(&raw),
                        explain(&opt),
                        self.pool.workers(),
                        explain_physical(&phys)
                    )))
                }
                other => Ok(QueryResult::Text(format!("{other:?}"))),
            },
            Statement::ShowTables => {
                let names: Vec<&str> = self.wsd.relation_names().collect();
                Ok(QueryResult::Text(names.join("\n")))
            }
            Statement::Checkpoint => {
                let Some(db) = self.storage.as_mut() else {
                    return Err(Error::Storage(
                        "CHECKPOINT requires a session opened on a database file \
                         (use Session::open or Session::attach)"
                            .into(),
                    ));
                };
                let payload = encode_wsd(&self.wsd);
                db.checkpoint(&payload)?;
                Ok(QueryResult::Text(format!(
                    "checkpointed generation {} ({} bytes, WAL reset)",
                    db.generation(),
                    payload.len()
                )))
            }
        }
    }

    fn run_select(&mut self, sel: &SelectStmt) -> Result<QueryResult> {
        if sel.prob_threshold.is_some() && (!sel.prob || sel.items.is_empty()) {
            return Err(maybms_relational::Error::InvalidExpr(
                "HAVING PROB() requires PROB() and answer columns in the select list".into(),
            ));
        }
        let mut result = self.run_select_inner(sel)?;
        // HAVING PROB() filters on the confidence column (always last).
        if let Some((op, threshold)) = sel.prob_threshold {
            if let QueryResult::Table(t) = result {
                let last = t.schema().len() - 1;
                let rows: Vec<_> = t
                    .rows()
                    .iter()
                    .filter(|r| {
                        op.apply(&r[last], &Value::Float(threshold)).unwrap_or(false)
                    })
                    .cloned()
                    .collect();
                result = QueryResult::Table(Relation::from_rows_unchecked(
                    t.schema().clone(),
                    rows,
                ));
            }
        }
        // ORDER BY / LIMIT post-process tabular results.
        if sel.order_by.is_empty() && sel.limit.is_none() {
            return Ok(result);
        }
        match result {
            QueryResult::Table(t) => {
                let mut t = if sel.order_by.is_empty() {
                    t
                } else {
                    let keys: Vec<(&str, bool)> = sel
                        .order_by
                        .iter()
                        .map(|(c, asc)| (c.as_str(), *asc))
                        .collect();
                    maybms_relational::ops::sort_by(&t, &keys)?
                };
                if let Some(n) = sel.limit {
                    let rows: Vec<_> = t.take_rows().into_iter().take(n).collect();
                    t = Relation::from_rows_unchecked(t.schema().clone(), rows);
                }
                Ok(QueryResult::Table(t))
            }
            QueryResult::WorldSet(_) | QueryResult::Text(_) => {
                Err(maybms_relational::Error::InvalidExpr(
                    "ORDER BY / LIMIT require a tabular result \
                     (POSSIBLE, CERTAIN, PROB() or EXPECTED)"
                        .into(),
                ))
            }
        }
    }

    fn run_select_inner(&mut self, sel: &SelectStmt) -> Result<QueryResult> {
        let raw = lower_select(sel)?;
        let plan = if self.optimize_plans {
            optimize(&raw, &self.wsd)?
        } else {
            raw
        };
        // compile the logical tree to a physical plan and execute it on
        // the session's worker pool
        let phys = compile(&plan, &self.wsd)?;
        let answer = Executor::new(&self.pool).run(&phys, &self.wsd)?;
        let schema = answer.relation("result")?.schema.clone();

        if let Some(agg) = &sel.expected {
            // EXPECTED COUNT() / EXPECTED SUM(col): one scalar row.
            let (name, v) = match agg {
                crate::ast::ExpectedAgg::Count => (
                    "expected_count",
                    prob::expected_count_in(&answer, "result", &self.pool)?,
                ),
                crate::ast::ExpectedAgg::Sum(col) => (
                    "expected_sum",
                    prob::expected_sum_in(&answer, "result", col, &self.pool)?,
                ),
            };
            let s = Schema::new(vec![(name, ColumnType::Float)]);
            let mut r = Relation::empty(s);
            r.push_unchecked(Tuple::new(vec![Value::Float(v)]));
            return Ok(QueryResult::Table(r));
        }

        match (sel.mode, sel.prob) {
            (WorldMode::AllWorlds, false) => Ok(QueryResult::WorldSet(answer)),
            (WorldMode::AllWorlds, true) | (WorldMode::Possible, true) => {
                if sel.items.is_empty() {
                    // SELECT PROB() FROM ... : probability of non-emptiness
                    let p = prob::nonempty_confidence_in(&answer, "result", &self.pool)?;
                    let s = Schema::new(vec![("prob", ColumnType::Float)]);
                    let mut r = Relation::empty(s);
                    r.push_unchecked(Tuple::new(vec![Value::Float(p)]));
                    Ok(QueryResult::Table(r))
                } else {
                    // answer tuples with their confidences
                    let conf = prob::tuple_confidence_in(&answer, "result", &self.pool)?;
                    let with_p = schema.concat(&Schema::new(vec![("prob", ColumnType::Float)]));
                    let mut r = Relation::empty(with_p);
                    for (t, p) in conf {
                        let mut vals = t.into_values();
                        vals.push(Value::Float(p));
                        r.push_unchecked(Tuple::new(vals));
                    }
                    Ok(QueryResult::Table(r))
                }
            }
            (WorldMode::Possible, false) => {
                let tuples = prob::possible_tuples_in(&answer, "result", &self.pool)?;
                Ok(QueryResult::Table(Relation::from_rows_unchecked(schema, tuples)))
            }
            (WorldMode::Certain, _) => {
                let tuples = prob::certain_tuples_in(&answer, "result", &self.pool)?;
                Ok(QueryResult::Table(Relation::from_rows_unchecked(schema, tuples)))
            }
        }
    }
}

impl From<Wsd> for Session {
    fn from(wsd: Wsd) -> Session {
        Session::with_wsd(wsd)
    }
}

/// Builds a session preloaded with the paper's medical example, used by
/// docs, examples and tests.
pub fn medical_session() -> Session {
    Session::with_wsd(maybms_core::examples::medical_wsd())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err_contains(r: Result<QueryResult>, what: &str) {
        match r {
            Err(e) => assert!(e.to_string().contains(what), "unexpected error {e}"),
            Ok(v) => panic!("expected error containing {what}, got {v:?}"),
        }
    }

    #[test]
    fn paper_query_via_sql() {
        let mut s = medical_session();
        let r = s
            .execute("SELECT test FROM R WHERE diagnosis = 'pregnancy'")
            .unwrap();
        let wsd = r.world_set().expect("plain select yields a world-set");
        // two worlds: {ultrasound} with 0.4 and {} with 0.6
        let ws = wsd.to_worldset(100).unwrap();
        assert_eq!(ws.merged().len(), 2);

        let r2 = s
            .execute("SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy'")
            .unwrap();
        let t = r2.table().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::str("ultrasound"));
        assert_eq!(t.rows()[0][1], Value::Float(0.4));
    }

    #[test]
    fn possible_and_certain() {
        let mut s = medical_session();
        let poss = s.execute("SELECT POSSIBLE diagnosis FROM R").unwrap();
        assert_eq!(poss.table().unwrap().len(), 3); // pregnancy, hypothyroidism, obesity
        let cert = s.execute("SELECT CERTAIN diagnosis FROM R").unwrap();
        assert_eq!(cert.table().unwrap().len(), 1); // obesity
        assert_eq!(cert.table().unwrap().rows()[0][0], Value::str("obesity"));
    }

    #[test]
    fn prob_of_nonempty() {
        let mut s = medical_session();
        let r = s
            .execute("SELECT PROB() FROM R WHERE test = 'ultrasound'")
            .unwrap();
        let t = r.table().unwrap();
        let p = t.rows()[0][0].as_f64().unwrap();
        assert!((p - 0.4).abs() < 1e-9);
    }

    #[test]
    fn ddl_dml_roundtrip() {
        let mut s = Session::new();
        s.execute("CREATE TABLE person (ssn INT, name TEXT)").unwrap();
        s.execute("INSERT INTO person VALUES (1, 'ann'), ({2: 0.5, 3: 0.5}, 'bob')")
            .unwrap();
        let r = s.execute("SELECT POSSIBLE ssn, PROB() FROM person").unwrap();
        let t = r.table().unwrap();
        assert_eq!(t.len(), 3);
        // world count: 2
        assert_eq!(s.wsd().world_count().to_u64(), Some(2));
        s.execute("DROP TABLE person").unwrap();
        err_contains(s.execute("SELECT * FROM person"), "unknown relation");
    }

    #[test]
    fn repair_key_via_sql() {
        let mut s = Session::new();
        s.execute("CREATE TABLE p (ssn INT, name TEXT)").unwrap();
        s.execute("INSERT INTO p VALUES ({1: 0.5, 2: 0.5}, 'ann'), (2, 'bob')")
            .unwrap();
        let msg = s.execute("REPAIR KEY p(ssn)").unwrap();
        assert!(matches!(msg, QueryResult::Text(ref t) if t.contains("repaired")));
        // ann's ssn=2 option is gone; her ssn is certainly 1
        let r = s.execute("SELECT CERTAIN ssn, name FROM p").unwrap();
        assert_eq!(r.table().unwrap().len(), 2);
        assert_eq!(s.cleaning_log.len(), 1);
    }

    #[test]
    fn repair_check_via_sql() {
        let mut s = Session::new();
        s.execute("CREATE TABLE r (age INT)").unwrap();
        s.execute("INSERT INTO r VALUES ({10: 0.5, 500: 0.5})").unwrap();
        s.execute("REPAIR CHECK r: age < 150").unwrap();
        let t = s.execute("SELECT CERTAIN age FROM r").unwrap();
        assert_eq!(t.table().unwrap().rows()[0][0], Value::Int(10));
    }

    #[test]
    fn join_via_sql_with_aliases() {
        let mut s = medical_session();
        s.execute("CREATE TABLE cost (tname TEXT, usd INT)").unwrap();
        s.execute("INSERT INTO cost VALUES ('ultrasound', 120), ('TSH', 40), ('BMI', 10)")
            .unwrap();
        let r = s
            .execute(
                "SELECT POSSIBLE r.test, c.usd, PROB() FROM R r, cost c WHERE r.test = c.tname",
            )
            .unwrap();
        let t = r.table().unwrap();
        assert_eq!(t.len(), 3);
        let ultra = t
            .rows()
            .iter()
            .find(|row| row[0] == Value::str("ultrasound"))
            .unwrap();
        assert_eq!(ultra[1], Value::Int(120));
        assert_eq!(ultra[2], Value::Float(0.4));
    }

    #[test]
    fn union_except_via_sql() {
        let mut s = medical_session();
        let r = s
            .execute(
                "SELECT POSSIBLE diagnosis FROM R WHERE diagnosis = 'obesity' \
                 UNION SELECT diagnosis FROM R WHERE diagnosis = 'pregnancy'",
            )
            .unwrap();
        assert_eq!(r.table().unwrap().len(), 2);
        let r2 = s
            .execute(
                "SELECT CERTAIN diagnosis FROM R EXCEPT SELECT diagnosis FROM R WHERE diagnosis = 'obesity'",
            )
            .unwrap();
        assert_eq!(r2.table().unwrap().len(), 0);
    }

    #[test]
    fn explain_shows_both_plans() {
        let mut s = medical_session();
        let r = s
            .execute("EXPLAIN SELECT test FROM R WHERE diagnosis = 'pregnancy'")
            .unwrap();
        let QueryResult::Text(txt) = r else { panic!() };
        assert!(txt.contains("logical plan"));
        assert!(txt.contains("optimized plan"));
        assert!(txt.contains("Scan R"));
    }

    #[test]
    fn explain_shows_physical_plan_with_join_strategy() {
        let mut s = medical_session();
        s.execute("CREATE TABLE cost (tname TEXT, usd INT)").unwrap();
        let r = s
            .execute("EXPLAIN SELECT * FROM R r, cost c WHERE r.test = c.tname")
            .unwrap();
        let QueryResult::Text(txt) = r else { panic!() };
        assert!(txt.contains("physical plan"), "{txt}");
        assert!(
            txt.contains("HashJoin [r.test = c.tname]"),
            "equi-join must pick the hash strategy:\n{txt}"
        );
        assert!(txt.contains("SeqScan R"), "{txt}");

        // a non-equi predicate falls back to the nested loop
        let r2 = s
            .execute("EXPLAIN SELECT * FROM R r, cost c WHERE r.test < c.tname")
            .unwrap();
        let QueryResult::Text(txt2) = r2 else { panic!() };
        assert!(txt2.contains("NestedLoopJoin"), "{txt2}");
    }

    #[test]
    fn rename_table_via_sql() {
        let mut s = Session::new();
        s.execute("CREATE TABLE a (x INT)").unwrap();
        s.execute("INSERT INTO a VALUES (1)").unwrap();
        s.execute("ALTER TABLE a RENAME TO b").unwrap();
        assert_eq!(s.execute("SELECT POSSIBLE x FROM b").unwrap().table().unwrap().len(), 1);
        err_contains(s.execute("SELECT * FROM a"), "unknown relation");
    }

    /// Regression for the PR 1 `rename_relation` fix: renaming onto an
    /// existing name must fail *and leave the source relation intact*
    /// (it used to be dropped).
    #[test]
    fn rename_table_onto_existing_name_keeps_source() {
        let mut s = Session::new();
        s.execute("CREATE TABLE a (x INT)").unwrap();
        s.execute("INSERT INTO a VALUES ({1: 0.5, 2: 0.5})").unwrap();
        s.execute("CREATE TABLE b (y INT)").unwrap();
        err_contains(s.execute("ALTER TABLE a RENAME TO b"), "already exists");
        // the source relation survived the failed rename, data intact
        let r = s.execute("SELECT POSSIBLE x, PROB() FROM a").unwrap();
        assert_eq!(r.table().unwrap().len(), 2);
        // and the target was not clobbered either
        s.execute("SELECT * FROM b").unwrap();
    }

    /// The physical executor must return identical SQL answers at every
    /// worker count (the pool's map is order-preserving + deterministic).
    #[test]
    fn sql_results_identical_across_worker_counts() {
        use std::sync::Arc;
        let setup = "CREATE TABLE cost (tname TEXT, usd INT); \
                     INSERT INTO cost VALUES ('ultrasound', 120), ('TSH', 40), ('BMI', 10)";
        let sql = "SELECT POSSIBLE r.test, c.usd, PROB() FROM R r, cost c \
                   WHERE r.test = c.tname ORDER BY prob DESC";
        let mut reference: Option<Vec<Vec<String>>> = None;
        for workers in [1usize, 2, 4] {
            let mut s = medical_session()
                .with_worker_pool(Arc::new(WorkerPool::new(workers)));
            s.execute_script(setup).unwrap();
            let t = s.execute(sql).unwrap().table().unwrap().clone();
            let rows: Vec<Vec<String>> = t
                .rows()
                .iter()
                .map(|r| r.values().iter().map(|v| v.to_string()).collect())
                .collect();
            match &reference {
                None => reference = Some(rows),
                Some(exp) => assert_eq!(&rows, exp, "workers = {workers}"),
            }
        }
    }

    #[test]
    fn unoptimized_sessions_agree_with_optimized() {
        let sql = "SELECT POSSIBLE r.test, c.usd, PROB() FROM R r, cost c WHERE r.test = c.tname";
        let setup = "CREATE TABLE cost (tname TEXT, usd INT); \
                     INSERT INTO cost VALUES ('ultrasound', 120), ('TSH', 40)";
        let mut s1 = medical_session();
        s1.execute_script(setup).unwrap();
        let mut s2 = medical_session();
        s2.execute_script(setup).unwrap();
        s2.optimize_plans = false;
        let r1 = s1.execute(sql).unwrap();
        let r2 = s2.execute(sql).unwrap();
        assert_eq!(
            r1.table().unwrap().canonical(),
            r2.table().unwrap().canonical()
        );
    }

    #[test]
    fn having_prob_threshold() {
        let mut s = medical_session();
        let r = s
            .execute("SELECT diagnosis, PROB() FROM R HAVING PROB() >= 0.6")
            .unwrap();
        let t = r.table().unwrap();
        // obesity (1.0) and hypothyroidism (0.6) pass; pregnancy (0.4) not
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|row| row[1].as_f64().unwrap() >= 0.6));
        // threshold without PROB() is rejected
        assert!(s.execute("SELECT diagnosis FROM R HAVING PROB() > 0.5").is_err());
        // composes with ORDER BY / LIMIT
        let r = s
            .execute(
                "SELECT diagnosis, PROB() FROM R HAVING PROB() > 0 ORDER BY prob DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(r.table().unwrap().rows()[0][0], Value::str("obesity"));
    }

    #[test]
    fn order_by_and_limit() {
        let mut s = medical_session();
        let r = s
            .execute("SELECT POSSIBLE diagnosis, PROB() FROM R ORDER BY prob DESC LIMIT 2")
            .unwrap();
        let t = r.table().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0], Value::str("obesity")); // p = 1 first
        let p0 = t.rows()[0][1].as_f64().unwrap();
        let p1 = t.rows()[1][1].as_f64().unwrap();
        assert!(p0 >= p1);

        // ORDER BY on a world-set result is rejected
        assert!(s
            .execute("SELECT diagnosis FROM R ORDER BY diagnosis")
            .is_err());
        // unknown sort column errors
        assert!(s
            .execute("SELECT POSSIBLE diagnosis FROM R ORDER BY nope")
            .is_err());
    }

    #[test]
    fn expected_aggregates() {
        let mut s = medical_session();
        // E[|σ diagnosis='pregnancy'|] = 0.4 (r1 in pregnancy worlds only)
        let r = s
            .execute("SELECT EXPECTED COUNT() FROM R WHERE diagnosis = 'pregnancy'")
            .unwrap();
        let v = r.table().unwrap().rows()[0][0].as_f64().unwrap();
        assert!((v - 0.4).abs() < 1e-9);

        // numeric column for ESUM
        s.execute("CREATE TABLE costs (tname TEXT, usd INT)").unwrap();
        s.execute("INSERT INTO costs VALUES ('ultrasound', {100: 0.5, 200: 0.5}), ('TSH', 40)")
            .unwrap();
        let r = s.execute("SELECT EXPECTED SUM(usd) FROM costs").unwrap();
        let v = r.table().unwrap().rows()[0][0].as_f64().unwrap();
        assert!((v - 190.0).abs() < 1e-9, "E[sum] = 0.5*100+0.5*200+40 = {v}");

        // oracle agreement on the count
        let q = maybms_core::algebra::Query::table("R")
            .select(maybms_relational::Expr::col("diagnosis").eq(Expr::lit("pregnancy")));
        let ans = q.eval(s.wsd()).unwrap();
        let brute = ans.to_worldset(100_000).unwrap().expected_count("result");
        assert!((brute - 0.4).abs() < 1e-9);
        use maybms_relational::Expr;
    }

    #[test]
    fn show_tables() {
        let mut s = medical_session();
        let QueryResult::Text(t) = s.execute("SHOW TABLES").unwrap() else { panic!() };
        assert_eq!(t, "R");
    }

    #[test]
    fn errors_surface() {
        let mut s = Session::new();
        err_contains(s.execute("SELECT * FROM missing"), "unknown relation");
        err_contains(s.execute("CREATE TABLE t (a INT"), "expected");
        s.execute("CREATE TABLE t (a INT)").unwrap();
        err_contains(s.execute("CREATE TABLE t (a INT)"), "already exists");
        err_contains(
            s.execute("INSERT INTO t VALUES ('wrong type')"),
            "type error",
        );
    }

    #[test]
    fn failed_repair_leaves_state_untouched() {
        let mut s = Session::new();
        s.execute("CREATE TABLE r (a INT, b INT)").unwrap();
        // two certain tuples conflicting under the FD, plus an uncertain
        // one the chase would prune first if it ran eagerly
        s.execute("INSERT INTO r VALUES (1, {1: 0.5, 2: 0.5}), (2, 1), (2, 2)")
            .unwrap();
        let before = maybms_core::codec::encode_wsd(s.wsd());
        // (2,1) vs (2,2) violate a -> b in every world: repair must fail …
        assert!(s.execute("REPAIR FD r: a -> b").is_err());
        // … and leave the decomposition byte-identical (no partial chase)
        assert_eq!(before, maybms_core::codec::encode_wsd(s.wsd()));
        assert!(s.cleaning_log.is_empty());
    }

    #[test]
    fn insert_is_atomic() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        // second row is ill-typed: the whole statement must be a no-op
        err_contains(
            s.execute("INSERT INTO t VALUES (1), ('bad')"),
            "type error",
        );
        let r = s.execute("SELECT POSSIBLE a FROM t").unwrap();
        assert_eq!(r.table().unwrap().len(), 0, "failed INSERT left rows behind");
        // arity mismatch in a later row is also atomic
        err_contains(s.execute("INSERT INTO t VALUES (1), (2, 3)"), "arity");
        assert_eq!(
            s.execute("SELECT POSSIBLE a FROM t").unwrap().table().unwrap().len(),
            0
        );
    }

    fn db_path(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir()
            .join(format!("maybms-session-{}-{name}.maybms", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(maybms_storage::wal_path_for(&p));
        p
    }

    fn rm_db(p: &std::path::Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(maybms_storage::wal_path_for(p));
    }

    #[test]
    fn durable_session_survives_reopen_without_checkpoint() {
        let path = db_path("reopen");
        {
            let mut s = Session::open(&path).unwrap();
            assert!(s.is_durable());
            s.execute_script(
                "CREATE TABLE p (ssn INT, name TEXT); \
                 INSERT INTO p VALUES ({1: 0.5, 2: 0.5}, 'ann'), (2, 'bob'); \
                 REPAIR KEY p(ssn)",
            )
            .unwrap();
            // dropped here without CHECKPOINT: recovery must replay the WAL
        }
        let mut s = Session::open(&path).unwrap();
        let r = s.execute("SELECT POSSIBLE ssn, name, PROB() FROM p ORDER BY name").unwrap();
        let t = r.table().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0], Value::Int(1)); // ann's ssn repaired to 1
        assert_eq!(t.rows()[0][2], Value::Float(1.0));
        rm_db(&path);
    }

    #[test]
    fn checkpoint_compacts_the_wal() {
        let path = db_path("ckpt");
        let mut s = Session::open(&path).unwrap();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        s.execute("INSERT INTO t VALUES ({1: 0.9, 2: 0.1})").unwrap();
        let wal_before = s.wal_len().unwrap();
        assert!(wal_before > maybms_storage::WAL_HEADER_LEN);
        let r = s.execute("CHECKPOINT").unwrap();
        assert!(matches!(r, QueryResult::Text(ref t) if t.contains("checkpointed")));
        assert_eq!(s.wal_len().unwrap(), maybms_storage::WAL_HEADER_LEN);
        assert_eq!(s.storage_generation(), Some(1));
        // statements after the checkpoint land in the fresh WAL …
        s.execute("INSERT INTO t VALUES (7)").unwrap();
        drop(s);
        // … and reopening sees snapshot + tail
        let mut s2 = Session::open(&path).unwrap();
        assert_eq!(
            s2.execute("SELECT POSSIBLE x FROM t").unwrap().table().unwrap().len(),
            3
        );
        rm_db(&path);
    }

    #[test]
    fn checkpoint_requires_a_database_file() {
        let mut s = Session::new();
        err_contains(s.execute("CHECKPOINT"), "requires a session opened");
    }

    #[test]
    fn attach_makes_a_session_durable_and_refuses_clobbering() {
        let path = db_path("attach");
        let mut s = medical_session();
        s.attach(&path).unwrap();
        assert!(s.is_durable());
        assert_eq!(s.storage_generation(), Some(1), "attach checkpoints immediately");
        s.execute("CREATE TABLE t (x INT)").unwrap();
        drop(s);
        // reopen: medical data + the new table are both there
        let mut s2 = Session::open(&path).unwrap();
        let r = s2.execute("SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy'").unwrap();
        assert_eq!(r.table().unwrap().rows()[0][1], Value::Float(0.4));
        // attaching another session onto the same files is refused
        let mut s3 = Session::new();
        let e = s3.attach(&path).unwrap_err();
        assert!(e.to_string().contains("already holds a database"), "{e}");
        // and double-attach is refused
        let e2 = s2.attach(db_path("attach-other")).unwrap_err();
        assert!(e2.to_string().contains("already attached"), "{e2}");
        rm_db(&path);
        rm_db(&db_path("attach-other"));
    }

    #[test]
    fn clones_are_detached() {
        let path = db_path("clone");
        let mut s = Session::open(&path).unwrap();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        let mut c = s.clone();
        assert!(!c.is_durable());
        // the clone keeps the state but mutations no longer hit the WAL
        c.execute("INSERT INTO t VALUES (1)").unwrap();
        drop(s);
        drop(c);
        let mut back = Session::open(&path).unwrap();
        assert_eq!(
            back.execute("SELECT POSSIBLE x FROM t").unwrap().table().unwrap().len(),
            0,
            "clone's insert must not reach the log"
        );
        rm_db(&path);
    }
}
