//! The session: a stateful database holding one decomposition, executing
//! SQL statements against it.
//!
//! Statements run through the full stack: parse → lower → logical
//! optimize → compile to a [`maybms_core::exec::PhysicalPlan`] → execute
//! with the session's [`WorkerPool`]. The pool defaults to the shared
//! process-wide pool (sized by `MAYBMS_WORKERS` or the machine's
//! parallelism); [`Session::with_worker_pool`] overrides it.
//!
//! Errors at the session boundary are the structured [`SessionError`]
//! (parse / plan / execute / storage / transaction variants, each carrying
//! its context and implementing `std::error::Error`).
//!
//! # Transactions and durability
//!
//! A session opened with [`Session::open`] (or made durable with
//! [`Session::attach`]) is backed by a `maybms-storage` [`Database`].
//! Outside a transaction, **autocommit** holds: every mutation (`CREATE` /
//! `DROP` / `ALTER` / `INSERT` / `DELETE` / `UPDATE` / `REPAIR`) that
//! succeeded in memory is appended to the write-ahead log and fsynced
//! before `run` returns.
//!
//! `BEGIN` opens an explicit transaction: mutations still apply to the
//! live decomposition immediately (queries inside the transaction see
//! them), but their wire records are **buffered**. `COMMIT` appends the
//! whole buffer as one CRC-framed **commit group** — a single WAL record,
//! a single fsync, however many statements the transaction held (this is
//! the group-commit write path; a transaction of N `INSERT`s costs one
//! fsync instead of N). `ROLLBACK` restores the decomposition as of
//! `BEGIN` and discards the buffer. The typed guard API
//! ([`Session::transaction`]) rolls back automatically when dropped
//! without a commit.
//!
//! **Recovery guarantees** ([`Session::open`]): the latest snapshot is
//! decoded and validated, then the WAL's committed prefix is replayed.
//! Because a commit group is one record under one CRC, recovery replays a
//! transaction *all or not at all*: a crash mid-`COMMIT` (torn group) or
//! mid-transaction (nothing appended yet) rolls the whole transaction
//! back, never a prefix of it. The engine is deterministic, so replay
//! reproduces the exact pre-crash committed state at any worker count.
//! `CHECKPOINT` compacts the log into a fresh snapshot (atomic write-new +
//! rename) and is refused inside a transaction.
//!
//! # Prepared statements
//!
//! [`Session::prepare`] parses a statement with `?` placeholders once;
//! [`Session::execute_prepared`] binds values and runs it — parse once,
//! bind many (the bulk loaders and benches use this):
//!
//! ```
//! use maybms_sql::Session;
//! use maybms_relational::Value;
//!
//! let mut s = Session::new();
//! s.execute("CREATE TABLE person (ssn INT, name TEXT)").unwrap();
//! // parse once, bind many
//! let ins = s.prepare("INSERT INTO person VALUES (?, ?)").unwrap();
//! for (ssn, name) in [(1i64, "ann"), (2, "bob")] {
//!     s.execute_prepared(&ins, &[Value::Int(ssn), Value::str(name)]).unwrap();
//! }
//! // explicit transaction: buffered records, single group-commit fsync
//! let mut txn = s.transaction().unwrap();
//! txn.execute("UPDATE person SET name = 'anna' WHERE ssn = 1").unwrap();
//! txn.execute("DELETE FROM person WHERE ssn = 2").unwrap();
//! txn.commit().unwrap();
//! let r = s.execute("SELECT POSSIBLE name FROM person").unwrap();
//! assert_eq!(r.rows().len(), 1);
//! ```

use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use maybms_core::algebra::{delete_op, update_op};
use maybms_core::chase::{clean, CleaningReport, Constraint};
use maybms_core::codec::{decode_wsd, encode_wsd};
use maybms_core::exec::{
    compile, explain_physical_annotated, global_pool, Executor, WorkerPool,
};
use maybms_core::prob;
use maybms_core::stats::{estimate_phys, WsdStats};
use maybms_core::wsd::Wsd;
use maybms_obs::trace::fmt_duration;
use maybms_obs::{MetricValue, QueryTrace, SlowLog, SlowQuery};
use maybms_relational::{
    Column, ColumnType, Error, Relation, Result, Schema, Tuple, Value,
};
use maybms_storage::{CheckpointKind, Database, Recovered, Vfs, DEFAULT_PAGE_SIZE};
use maybms_worldset::OrSetCell;

use crate::ast::{InsertValue, RepairStmt, SelectStmt, Statement, WorldMode};
use crate::optimizer::{explain, optimize_with_stats};
use crate::parser::{parse_counting_params, parse_script};
use crate::plan::lower_select;
use crate::replication::{ReplStatus, STALE_AFTER};
use crate::wire;

/// How many entries the session's slow-query ring holds.
const SLOW_LOG_CAPACITY: usize = 32;

/// The default slow-query threshold: `MAYBMS_SLOW_QUERY_MS` when set (an
/// unparsable value disables the log), otherwise 100 ms.
fn default_slow_threshold() -> Option<Duration> {
    match std::env::var("MAYBMS_SLOW_QUERY_MS") {
        Ok(v) => v.trim().parse::<u64>().ok().map(Duration::from_millis),
        Err(_) => Some(Duration::from_millis(100)),
    }
}

/// Structured errors of the session boundary: what failed, and at which
/// stage of the statement lifecycle.
#[derive(Debug, Clone)]
pub enum SessionError {
    /// The SQL text failed to lex or parse.
    Parse {
        /// The offending statement text.
        sql: String,
        /// The underlying lex/parse error.
        source: Error,
    },
    /// The statement parsed but could not be planned (lowering, logical
    /// optimization or physical compilation failed — e.g. an unknown
    /// relation or column in a SELECT).
    Plan {
        /// The underlying planning error.
        source: Error,
    },
    /// The statement failed while executing against the decomposition
    /// (type errors, arity mismatches, unsatisfiable repairs, …).
    Execute {
        /// The underlying engine error.
        source: Error,
    },
    /// The durable backing store failed (I/O, corruption, WAL append).
    Storage {
        /// The underlying storage error.
        source: Error,
    },
    /// The session is **degraded to read-only**: a checkpoint failed
    /// before publishing anything (typically `ENOSPC` while writing the
    /// temp snapshot), so the on-disk state is intact but stale. Queries
    /// still work; mutations are refused until a `CHECKPOINT` succeeds
    /// (after freeing space) or the database is reopened.
    Degraded {
        /// Why the session degraded (the failed checkpoint's error).
        reason: String,
    },
    /// Transaction-control misuse: nested `BEGIN`, `COMMIT`/`ROLLBACK`
    /// without a transaction, `CHECKPOINT` or `attach` inside one.
    Transaction {
        /// What was misused, in words.
        context: String,
    },
    /// The session is a **read-only replica** (it applies the primary's
    /// shipped log and must not diverge from it): mutations, transaction
    /// control and `CHECKPOINT` are refused.
    ReadOnlyReplica {
        /// What the refused statement was, for the error message.
        statement: String,
    },
}

impl SessionError {
    fn plan(source: Error) -> SessionError {
        SessionError::Plan { source }
    }
    fn exec(source: Error) -> SessionError {
        SessionError::Execute { source }
    }
    pub(crate) fn storage(source: Error) -> SessionError {
        SessionError::Storage { source }
    }
    pub(crate) fn txn(context: impl Into<String>) -> SessionError {
        SessionError::Transaction { context: context.into() }
    }

    /// The underlying engine error, when there is one.
    pub fn source_error(&self) -> Option<&Error> {
        match self {
            SessionError::Parse { source, .. }
            | SessionError::Plan { source }
            | SessionError::Execute { source }
            | SessionError::Storage { source } => Some(source),
            SessionError::Degraded { .. }
            | SessionError::Transaction { .. }
            | SessionError::ReadOnlyReplica { .. } => None,
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse { sql, source } => {
                write!(f, "parse error in \"{sql}\": {source}")
            }
            SessionError::Plan { source } => write!(f, "planning failed: {source}"),
            // execution/storage messages are shown verbatim so callers
            // (and long-standing tests) can grep for the engine's wording
            SessionError::Execute { source } => write!(f, "{source}"),
            SessionError::Storage { source } => write!(f, "{source}"),
            SessionError::Degraded { reason } => write!(
                f,
                "session degraded to read-only: {reason} (free space and retry \
                 CHECKPOINT, or reopen the database)"
            ),
            SessionError::Transaction { context } => write!(f, "transaction error: {context}"),
            SessionError::ReadOnlyReplica { statement } => write!(
                f,
                "read-only replica: {statement} is refused (replicas apply the \
                 primary's log and accept queries only)"
            ),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source_error().map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// Result alias of the session boundary.
pub type SessionResult<T> = std::result::Result<T, SessionError>;

/// The outcome of executing one statement.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// A plain (all-worlds) SELECT: the answer is a world-set, returned as
    /// a decomposition whose single relation is `result`.
    WorldSet(Wsd),
    /// POSSIBLE / CERTAIN / PROB() queries return an ordinary relation.
    Table(Relation),
    /// DDL / DML / REPAIR acknowledgement or EXPLAIN text.
    Text(String),
}

impl QueryResult {
    /// The relation, when the result is one.
    pub fn table(&self) -> Option<&Relation> {
        match self {
            QueryResult::Table(r) => Some(r),
            _ => None,
        }
    }

    /// The decomposition, when the result is one.
    pub fn world_set(&self) -> Option<&Wsd> {
        match self {
            QueryResult::WorldSet(w) => Some(w),
            _ => None,
        }
    }

    /// The answer rows of a tabular result; empty for world-set and text
    /// results — `for row in r.rows()` instead of pattern-matching.
    pub fn rows(&self) -> &[Tuple] {
        match self {
            QueryResult::Table(r) => r.rows(),
            _ => &[],
        }
    }

    /// The acknowledgement text of a DDL / DML / transaction-control
    /// result; empty for tabular and world-set results.
    pub fn ack(&self) -> &str {
        match self {
            QueryResult::Text(t) => t,
            _ => "",
        }
    }
}

/// A statement parsed (and parameter-counted) once, to be bound and
/// executed many times — see [`Session::prepare`].
#[derive(Debug, Clone)]
pub struct Prepared {
    stmt: Statement,
    params: u32,
}

impl Prepared {
    /// How many `?` placeholders the statement holds.
    pub fn param_count(&self) -> usize {
        self.params as usize
    }

    /// The underlying statement template (placeholders included).
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }

    /// Substitutes the placeholders with `params` (by position), returning
    /// the closed statement. The value count must match exactly.
    pub fn bind(&self, params: &[Value]) -> SessionResult<Statement> {
        if params.len() != self.params as usize {
            return Err(SessionError::exec(Error::InvalidExpr(format!(
                "prepared statement takes {} parameter(s), {} bound",
                self.params,
                params.len()
            ))));
        }
        bind_statement(&self.stmt, params).map_err(SessionError::exec)
    }
}

fn bind_insert_value(v: &InsertValue, params: &[Value]) -> Result<InsertValue> {
    Ok(match v {
        InsertValue::Param(i) => {
            let v = params.get(*i as usize).ok_or_else(|| {
                Error::InvalidExpr(format!("parameter ?{} has no bound value", i + 1))
            })?;
            InsertValue::Certain(v.clone())
        }
        other => other.clone(),
    })
}

fn bind_select(sel: &SelectStmt, params: &[Value]) -> Result<SelectStmt> {
    let mut out = sel.clone();
    if let Some(p) = &sel.where_clause {
        out.where_clause = Some(p.with_params(params)?);
    }
    if let Some((op, rhs)) = &sel.set_op {
        out.set_op = Some((*op, Box::new(bind_select(rhs, params)?)));
    }
    Ok(out)
}

fn bind_statement(stmt: &Statement, params: &[Value]) -> Result<Statement> {
    Ok(match stmt {
        Statement::Insert { table, rows } => Statement::Insert {
            table: table.clone(),
            rows: rows
                .iter()
                .map(|row| row.iter().map(|v| bind_insert_value(v, params)).collect())
                .collect::<Result<_>>()?,
        },
        Statement::Delete { table, pred } => Statement::Delete {
            table: table.clone(),
            pred: pred.as_ref().map(|p| p.with_params(params)).transpose()?,
        },
        Statement::Update { table, set, pred } => Statement::Update {
            table: table.clone(),
            set: set
                .iter()
                .map(|(c, v)| Ok((c.clone(), bind_insert_value(v, params)?)))
                .collect::<Result<_>>()?,
            pred: pred.as_ref().map(|p| p.with_params(params)).transpose()?,
        },
        Statement::Select(sel) => Statement::Select(bind_select(sel, params)?),
        Statement::Repair(RepairStmt::Check { table, pred }) => {
            Statement::Repair(RepairStmt::Check {
                table: table.clone(),
                pred: pred.with_params(params)?,
            })
        }
        Statement::Explain { stmt, analyze } => Statement::Explain {
            stmt: Box::new(bind_statement(stmt, params)?),
            analyze: *analyze,
        },
        other => other.clone(),
    })
}

/// Buffered state of an open transaction.
#[derive(Debug, Clone)]
struct TxnState {
    /// The decomposition as of `BEGIN` — what `ROLLBACK` restores. An
    /// O(1) `Arc` share of the live decomposition (not a deep copy):
    /// the first mutation inside the transaction copies-on-write, so
    /// `BEGIN` itself costs nothing regardless of database size.
    saved: Arc<Wsd>,
    /// `cleaning_log` length as of `BEGIN`.
    saved_cleaning: usize,
    /// Mutations applied so far (for the COMMIT/ROLLBACK acknowledgement).
    stmts: usize,
    /// Wire records of those mutations, in order; `COMMIT` appends them as
    /// one commit group. Only populated on durable sessions — a session
    /// with no backing store has no log for the records to ever reach
    /// (`attach` is refused mid-transaction).
    buffered: Vec<Vec<u8>>,
    /// Active savepoints, oldest first. `ROLLBACK TO` truncates the
    /// decomposition, the cleaning log, the statement count and the
    /// buffered records back to a mark; re-using a name shadows the
    /// earlier mark (latest wins), as in PostgreSQL.
    savepoints: Vec<SavepointMark>,
}

/// One `SAVEPOINT`: everything needed to rewind the open transaction to
/// the moment it was established without closing the transaction.
#[derive(Debug, Clone)]
struct SavepointMark {
    /// The savepoint's name (matched exactly, latest mark wins).
    name: String,
    /// The decomposition as of `SAVEPOINT` — an O(1) `Arc` share; the
    /// first mutation after the mark copies-on-write.
    saved: Arc<Wsd>,
    /// `cleaning_log` length as of `SAVEPOINT`.
    saved_cleaning: usize,
    /// `TxnState::stmts` as of `SAVEPOINT`.
    stmts: usize,
    /// `TxnState::buffered` length as of `SAVEPOINT` — the buffered wire
    /// records are truncated to this on `ROLLBACK TO`, so a later
    /// `COMMIT` logs exactly the statements still in effect.
    buffered: usize,
}

/// An immutable snapshot of a session's decomposition, stamped with the
/// WAL position (LSN) it reflects.
///
/// Cloning and holding a snapshot is O(1) — it shares the state by
/// `Arc`; the owning session copies-on-write at its next mutation, so
/// the snapshot never changes underneath its holder. `lsn` is `0` for
/// sessions with no backing store (no log to have a position in).
///
/// Snapshots are the unit of the server's snapshot isolation: the group
/// committer publishes one after every committed batch, and read
/// connections run against [`Session::view_at`] of the latest published
/// one.
#[derive(Debug, Clone)]
pub struct WsdSnapshot {
    wsd: Arc<Wsd>,
    lsn: u64,
}

impl WsdSnapshot {
    /// The WAL position this snapshot reflects: every commit group with
    /// LSN ≤ this is included, nothing later is.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// The decomposition at [`WsdSnapshot::lsn`].
    pub fn wsd(&self) -> &Wsd {
        &self.wsd
    }
}

/// A MayBMS session: the incomplete database plus execution settings.
#[derive(Debug)]
pub struct Session {
    /// The live decomposition, behind an `Arc` so transactions,
    /// savepoints and [`Session::snapshot`] share it in O(1); mutations
    /// go through `Arc::make_mut` (copy-on-write when a snapshot is
    /// outstanding, in-place when the session holds the only reference).
    wsd: Arc<Wsd>,
    /// Disable to execute unoptimized plans (used by the E3 ablation).
    pub optimize_plans: bool,
    /// Reports from REPAIR statements, latest last.
    pub cleaning_log: Vec<CleaningReport>,
    /// The worker pool physical plans and confidence computation run on.
    pool: Arc<WorkerPool>,
    /// The durable backing store, when this session was opened on (or
    /// attached to) a database file.
    storage: Option<Database>,
    /// The open transaction, if `BEGIN` ran without a `COMMIT`/`ROLLBACK`.
    txn: Option<TxnState>,
    /// A replication follower: mutations are refused at the boundary
    /// (`run`), while the replication layer applies shipped records
    /// through the internal path.
    read_only: bool,
    /// Set when a checkpoint failed before publishing anything (e.g.
    /// `ENOSPC` writing the temp snapshot): the session refuses further
    /// mutations with [`SessionError::Degraded`] until a `CHECKPOINT`
    /// succeeds, which clears it. Unlike storage poisoning this is
    /// recoverable in place — nothing on disk was damaged.
    degraded: Option<String>,
    /// Cardinality statistics over the session's decomposition, reused
    /// across queries; the epoch scheme inside invalidates per-relation
    /// entries when the decomposition changes, so this never goes stale.
    stats: WsdStats,
    /// The trace of the statement currently inside [`Session::execute`]:
    /// `run_select_inner` pushes its optimize/compile/execute spans here.
    trace: Option<QueryTrace>,
    /// Ring of statements whose wall-clock time crossed the threshold —
    /// `SHOW SLOW QUERIES` reads it back out.
    slow_log: Arc<SlowLog>,
    /// Statements at least this slow are logged; `None` disables the log.
    slow_threshold: Option<Duration>,
    /// Live replication position, installed by the replication layer on
    /// follower sessions — `SHOW REPLICATION STATUS` reads it.
    repl_status: Option<Arc<ReplStatus>>,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Clone for Session {
    /// Clones the in-memory state only: the clone is **detached** from any
    /// database file (two sessions appending to one write-ahead log would
    /// interleave corruptly). Use [`Session::attach`] to give the clone
    /// its own file.
    ///
    /// A transaction open at clone time is **carried over**: the clone
    /// holds the same pre-`BEGIN` snapshot and buffered records, so it can
    /// keep executing, `ROLLBACK`, or `COMMIT` (a commit on the detached
    /// clone applies in memory only — nothing reaches the original's log).
    fn clone(&self) -> Session {
        Session {
            // an O(1) Arc share: the two sessions copy-on-write away
            // from each other at their first respective mutations
            wsd: Arc::clone(&self.wsd),
            optimize_plans: self.optimize_plans,
            cleaning_log: self.cleaning_log.clone(),
            pool: self.pool.clone(),
            storage: None,
            txn: self.txn.clone(),
            read_only: self.read_only,
            degraded: None,
            stats: WsdStats::new(),
            trace: None,
            slow_log: Arc::new(SlowLog::new(SLOW_LOG_CAPACITY)),
            slow_threshold: self.slow_threshold,
            repl_status: None,
        }
    }
}

impl Session {
    /// A fresh in-memory session over an empty database. Use
    /// [`Session::open`] for a durable one, or [`Session::attach`] to add
    /// durability later.
    pub fn new() -> Session {
        Session {
            wsd: Arc::new(Wsd::new()),
            optimize_plans: true,
            cleaning_log: Vec::new(),
            pool: global_pool(),
            storage: None,
            txn: None,
            read_only: false,
            degraded: None,
            stats: WsdStats::new(),
            trace: None,
            slow_log: Arc::new(SlowLog::new(SLOW_LOG_CAPACITY)),
            slow_threshold: default_slow_threshold(),
            repl_status: None,
        }
    }

    /// Opens (or creates) a durable session on the database at `path`
    /// (conventionally `*.maybms`; the write-ahead log lives next to it
    /// at `<path>.wal`, an incremental-checkpoint overlay at
    /// `<path>.inc`). Recovery runs here: the latest snapshot (base +
    /// overlay) is decoded and validated, then the WAL's committed prefix
    /// is replayed — single statements and whole commit groups alike — so
    /// the returned session holds exactly the state as of the last
    /// committed statement or transaction, even after a crash.
    ///
    /// ```
    /// use maybms_sql::Session;
    ///
    /// let path = std::env::temp_dir().join(format!("doc-open-{}.maybms", std::process::id()));
    /// # let _ = std::fs::remove_file(&path);
    /// # let _ = std::fs::remove_file(maybms_storage::wal_path_for(&path));
    /// {
    ///     let mut s = Session::open(&path).unwrap();
    ///     s.execute("CREATE TABLE t (x INT)").unwrap();
    ///     s.execute("INSERT INTO t VALUES ({1: 0.5, 2: 0.5})").unwrap();
    ///     // dropped without CHECKPOINT: the log alone carries the state
    /// }
    /// let mut recovered = Session::open(&path).unwrap();
    /// assert_eq!(recovered.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 2);
    /// # let _ = std::fs::remove_file(&path);
    /// # let _ = std::fs::remove_file(maybms_storage::wal_path_for(&path));
    /// ```
    pub fn open(path: impl AsRef<Path>) -> SessionResult<Session> {
        let recovered = Database::open(path).map_err(SessionError::storage)?;
        Session::from_recovered(recovered)
    }

    /// As [`Session::open`], with all file I/O routed through an explicit
    /// [`Vfs`] — the entry point fault-injection tests use to open a
    /// session over a [`maybms_storage::FaultVfs`].
    pub fn open_with_vfs(path: impl AsRef<Path>, vfs: Arc<dyn Vfs>) -> SessionResult<Session> {
        let recovered = Database::open_with_vfs(path, DEFAULT_PAGE_SIZE, vfs)
            .map_err(SessionError::storage)?;
        Session::from_recovered(recovered)
    }

    /// Recovery tail shared by [`Session::open`] and
    /// [`Session::open_with_vfs`]: decode the snapshot, replay the WAL's
    /// committed prefix, attach the database handle.
    fn from_recovered(recovered: Recovered) -> SessionResult<Session> {
        let wsd = match &recovered.snapshot {
            Some(payload) => decode_wsd(payload).map_err(SessionError::storage)?,
            None => Wsd::new(),
        };
        let mut session = Session::with_wsd(wsd);
        for record in &recovered.records {
            // Replay bypasses run(): already-logged statements must not be
            // logged again. Replay failure means a corrupt log (every
            // logged statement succeeded once and the engine is
            // deterministic), so it surfaces as an error.
            let stmts = wire::decode_wal_record(record).map_err(SessionError::storage)?;
            for stmt in &stmts {
                session.apply(stmt).map_err(|e| {
                    SessionError::storage(Error::Storage(format!(
                        "WAL replay failed on {stmt:?}: {e}"
                    )))
                })?;
            }
        }
        session.storage = Some(recovered.db);
        Ok(session)
    }

    /// Attaches durability to an in-memory session: creates the database
    /// files at `path` and immediately checkpoints the current state.
    /// Refuses to clobber an existing database, and refuses inside a
    /// transaction (the snapshot would capture uncommitted state).
    pub fn attach(&mut self, path: impl AsRef<Path>) -> SessionResult<()> {
        if self.txn.is_some() {
            return Err(SessionError::txn(
                "cannot attach a database file inside a transaction",
            ));
        }
        if self.storage.is_some() {
            return Err(SessionError::storage(Error::Storage(
                "session is already attached to a database file".into(),
            )));
        }
        let recovered = Database::open(path.as_ref()).map_err(SessionError::storage)?;
        if recovered.snapshot.is_some()
            || !recovered.records.is_empty()
            || recovered.db.generation() != 0
        {
            return Err(SessionError::storage(Error::Storage(format!(
                "refusing to attach: {} already holds a database",
                path.as_ref().display()
            ))));
        }
        let mut db = recovered.db;
        db.checkpoint(&encode_wsd(&self.wsd)).map_err(SessionError::storage)?;
        self.storage = Some(db);
        Ok(())
    }

    /// Whether this session writes through to a database file.
    pub fn is_durable(&self) -> bool {
        self.storage.is_some()
    }

    /// Whether a transaction is open (`BEGIN` without `COMMIT`/`ROLLBACK`).
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Whether this session refuses mutations (a replication follower —
    /// see [`crate::replication::Replica`]).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Marks this session as a read-only replica: every mutation,
    /// transaction-control statement and `CHECKPOINT` through
    /// [`Session::run`] fails with [`SessionError::ReadOnlyReplica`].
    /// The replication layer applies shipped records through an internal
    /// path that bypasses this check (they were already committed on the
    /// primary).
    pub(crate) fn set_read_only(&mut self, read_only: bool) {
        self.read_only = read_only;
    }

    /// Whether the backing store is **poisoned**: an append or checkpoint
    /// publish step failed after the point of no return, so durability of
    /// in-memory state is unknown. Mutations are refused; reopen the path
    /// to recover the last durable state. `false` when not attached.
    pub fn is_poisoned(&self) -> bool {
        self.storage.as_ref().is_some_and(Database::is_poisoned)
    }

    /// Why the backing store is poisoned, if it is.
    pub fn poison_reason(&self) -> Option<&str> {
        self.storage.as_ref().and_then(Database::poison_reason)
    }

    /// Whether the session is **degraded to read-only** after a checkpoint
    /// failed before publishing anything (see [`SessionError::Degraded`]).
    /// A successful `CHECKPOINT` clears it in place.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Why the session is degraded, if it is.
    pub fn degraded_reason(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// The snapshot generation of the backing store, if attached.
    pub fn storage_generation(&self) -> Option<u64> {
        self.storage.as_ref().map(Database::generation)
    }

    /// LSN of the last committed (durable) record, if attached. Monotone
    /// across the database's life — checkpoints never reset it — so it
    /// names the exact log position a replica must reach to be in sync.
    pub fn last_lsn(&self) -> Option<u64> {
        self.storage.as_ref().map(Database::last_lsn)
    }

    /// The database file path, if attached — a server uses it to serve
    /// the WAL-shipping replica feed for the same database.
    pub fn storage_path(&self) -> Option<&Path> {
        self.storage.as_ref().map(Database::snapshot_path)
    }

    /// Committed WAL bytes (header included), if attached — tests use
    /// this to observe checkpoint compaction.
    pub fn wal_len(&self) -> Option<u64> {
        self.storage.as_ref().map(Database::wal_len)
    }

    /// fsyncs issued by WAL appends since open (or the last checkpoint),
    /// if attached — tests use this to assert the group-commit contract
    /// (one fsync per committed transaction).
    pub fn wal_sync_count(&self) -> Option<u64> {
        self.storage.as_ref().map(Database::wal_sync_count)
    }

    /// Disables (or re-enables) the per-statement WAL fsync — see
    /// `maybms_storage::Wal::set_sync`. Benches only; with sync off a
    /// power failure may lose acknowledged statements.
    pub fn set_wal_sync(&mut self, sync: bool) {
        if let Some(db) = &mut self.storage {
            db.set_sync(sync);
        }
    }

    /// A session over an existing decomposition.
    pub fn with_wsd(wsd: Wsd) -> Session {
        Session { wsd: Arc::new(wsd), ..Session::new() }
    }

    /// Replaces the worker pool (e.g. `WorkerPool::new(1)` for forced
    /// sequential execution, or a sized pool for scaling sweeps).
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Session {
        self.pool = pool;
        self
    }

    /// The pool this session executes on.
    pub fn worker_pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The live decomposition this session queries and mutates.
    pub fn wsd(&self) -> &Wsd {
        &self.wsd
    }

    /// Mutable access to the decomposition (bypasses SQL and the WAL —
    /// durable sessions should mutate through statements instead).
    /// Copies-on-write when a snapshot, open transaction or savepoint
    /// still shares the decomposition.
    pub fn wsd_mut(&mut self) -> &mut Wsd {
        Arc::make_mut(&mut self.wsd)
    }

    /// An immutable, LSN-stamped snapshot of the session's current state.
    ///
    /// O(1): the snapshot shares the live decomposition by `Arc`; the
    /// session's next mutation copies-on-write away from it, so the
    /// snapshot stays frozen at exactly the state (and WAL position) it
    /// was taken at, however long it is held and however far writers
    /// advance. This is the read side of the server's snapshot
    /// isolation: every reader gets a consistent view for free and
    /// never blocks the writer.
    pub fn snapshot(&self) -> WsdSnapshot {
        WsdSnapshot {
            wsd: Arc::clone(&self.wsd),
            lsn: self.last_lsn().unwrap_or(0),
        }
    }

    /// A detached **read-only** session over [`Session::snapshot`] of
    /// this session — the "view session" server connections run their
    /// queries on. O(1) to create; mutations and transaction control
    /// are refused at the boundary, queries execute normally.
    pub fn read_view(&self) -> Session {
        let mut view = Session::view_at(&self.snapshot());
        view.pool = Arc::clone(&self.pool);
        view
    }

    /// A detached read-only session frozen at `snapshot`. See
    /// [`Session::read_view`]; this form lets a server hand one
    /// published snapshot to many connections.
    pub fn view_at(snapshot: &WsdSnapshot) -> Session {
        Session {
            wsd: Arc::clone(&snapshot.wsd),
            read_only: true,
            ..Session::new()
        }
    }

    /// A detached **writable** in-memory session frozen at `snapshot` —
    /// the private workspace a server connection executes an open
    /// transaction in (read-your-writes preview; nothing reaches any
    /// log until the statements are submitted for group commit).
    pub fn writable_at(snapshot: &WsdSnapshot) -> Session {
        Session { wsd: Arc::clone(&snapshot.wsd), ..Session::new() }
    }

    /// Replaces this session's state with `snapshot` (an O(1) pointer
    /// swap) — how a long-lived view session refreshes to the latest
    /// published commit. Refused while a transaction is open: the
    /// transaction's rollback state refers to the old timeline.
    pub fn install_snapshot(&mut self, snapshot: &WsdSnapshot) -> SessionResult<()> {
        if self.txn.is_some() {
            return Err(SessionError::txn(
                "cannot install a snapshot while a transaction is open",
            ));
        }
        self.wsd = Arc::clone(&snapshot.wsd);
        Ok(())
    }

    /// Applies `stmts` in order, all-or-nothing, **without** logging
    /// anything: on the first failure the decomposition rolls back to
    /// the state before the group and the error is returned. The group
    /// committer executes each submitted commit group through this and
    /// appends the wire records itself (one batched fsync for many
    /// groups); `run` is the single-session path that logs per
    /// statement.
    pub(crate) fn apply_group(&mut self, stmts: &[Statement]) -> SessionResult<Vec<QueryResult>> {
        let saved = Arc::clone(&self.wsd);
        let saved_cleaning = self.cleaning_log.len();
        let mut results = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            match self.apply(stmt) {
                Ok(r) => results.push(r),
                Err(e) => {
                    self.wsd = saved;
                    self.cleaning_log.truncate(saved_cleaning);
                    return Err(e);
                }
            }
        }
        Ok(results)
    }

    /// Appends already-encoded commit-group records to the WAL under a
    /// **single fsync** (see [`Database::append_many`]), returning the
    /// LSN of the last group. The in-memory state is expected to
    /// already hold the groups' effects ([`Session::apply_group`]); on
    /// failure the caller must roll memory back to the pre-batch
    /// snapshot, because the store is now poisoned and disk holds none
    /// of the batch.
    pub(crate) fn append_commit_groups(&mut self, groups: &[Vec<u8>]) -> SessionResult<u64> {
        match &mut self.storage {
            Some(db) => db.append_many(groups).map_err(SessionError::storage),
            // no backing store: the commit is memory-only (exactly like
            // COMMIT on a non-durable session) and has no LSN
            None => Ok(0),
        }
    }

    /// Restores the decomposition to `snapshot` after a failed batch
    /// append — memory returns to exactly the committed state disk
    /// holds.
    pub(crate) fn restore_snapshot(&mut self, snapshot: &WsdSnapshot) {
        self.wsd = Arc::clone(&snapshot.wsd);
    }

    /// Parses and executes one statement.
    ///
    /// The statement is traced through the pipeline phases (parse →
    /// optimize → compile → execute); when its total wall-clock time
    /// reaches the slow-query threshold (see
    /// [`Session::set_slow_query_threshold`]) the trace lands in the
    /// session's slow-query ring, which `SHOW SLOW QUERIES` reads.
    pub fn execute(&mut self, sql: &str) -> SessionResult<QueryResult> {
        let mut trace = QueryTrace::start();
        let begin = Instant::now();
        let stmt = self.prepare_unparameterized(sql)?;
        trace.push("parse", begin);
        self.trace = Some(trace);
        let result = self.run(&stmt.stmt);
        let trace = self.trace.take().expect("trace installed above"); // maybms-lint: allow(no-panic-in-prod) -- the trace sink was installed unconditionally at the top of this block
        if let Some(threshold) = self.slow_threshold {
            let total = trace.total();
            if total >= threshold {
                self.slow_log.record(SlowQuery {
                    sql: sql.to_string(),
                    total,
                    phases: trace.render(),
                    at: Instant::now(),
                });
            }
        }
        result
    }

    /// Sets the slow-query threshold: statements whose total wall-clock
    /// time through [`Session::execute`] reaches it are recorded in the
    /// slow-query ring (`SHOW SLOW QUERIES`). `None` disables the log.
    /// The initial value comes from `MAYBMS_SLOW_QUERY_MS` (default
    /// 100 ms; `0` logs every statement).
    pub fn set_slow_query_threshold(&mut self, threshold: Option<Duration>) {
        self.slow_threshold = threshold;
    }

    /// The session's slow-query ring — shareable, so a monitoring thread
    /// can read it while the session executes.
    pub fn slow_log(&self) -> &Arc<SlowLog> {
        &self.slow_log
    }

    /// Installs the live replication position `SHOW REPLICATION STATUS`
    /// reports — the replication layer calls this on follower sessions.
    pub(crate) fn set_repl_status(&mut self, status: Arc<ReplStatus>) {
        self.repl_status = Some(status);
    }

    /// Executes a `;`-separated script, returning the last statement's
    /// result.
    ///
    /// A multi-statement script containing mutations runs as an
    /// **implicit transaction**: if any statement fails, everything the
    /// script already applied is rolled back — a script is all-or-nothing,
    /// in memory and (on a durable session) on disk, where it commits as
    /// one group under one fsync. Scripts that manage transactions
    /// themselves (`BEGIN`/`COMMIT`/`ROLLBACK`/`CHECKPOINT` statements),
    /// single-statement scripts, pure-query scripts, and scripts run
    /// inside an already-open transaction execute statement-by-statement
    /// exactly as before.
    pub fn execute_script(&mut self, sql: &str) -> SessionResult<QueryResult> {
        let stmts = parse_script(sql)
            .map_err(|source| SessionError::Parse { sql: sql.to_string(), source })?;
        let implicit_txn = !self.in_transaction()
            && !self.read_only
            && stmts.len() >= 2
            && stmts.iter().any(wire::is_mutation)
            && !stmts.iter().any(|s| {
                matches!(
                    s,
                    Statement::Begin
                        | Statement::Commit
                        | Statement::Rollback
                        | Statement::Checkpoint { .. }
                )
            });
        if implicit_txn {
            self.run(&Statement::Begin)?;
        }
        let mut last = QueryResult::Text("OK".into());
        for s in &stmts {
            match self.run(s) {
                Ok(r) => last = r,
                Err(e) => {
                    if implicit_txn {
                        // Roll the whole script back; the original error is
                        // what the caller needs (a rollback failure would
                        // only mean the transaction is already gone).
                        // maybms-lint: allow(poison-discipline) -- best-effort rollback while propagating the original error; rollback touches no durable state
                        let _ = self.run(&Statement::Rollback);
                    }
                    return Err(e);
                }
            }
        }
        if implicit_txn {
            // Commit the group; the script's observable result stays the
            // last statement's, not the COMMIT acknowledgement.
            self.run(&Statement::Commit)?;
        }
        Ok(last)
    }

    /// Parses a statement with `?` placeholders once, for repeated
    /// [`Session::execute_prepared`] calls — the loaders' fast path
    /// (parse/lower once, bind many).
    ///
    /// ```
    /// use maybms_sql::Session;
    /// use maybms_relational::Value;
    ///
    /// let mut s = Session::new();
    /// s.execute("CREATE TABLE t (x INT, tag TEXT)").unwrap();
    /// let ins = s.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
    /// assert_eq!(ins.param_count(), 2);
    /// for i in 0..3i64 {
    ///     s.execute_prepared(&ins, &[Value::Int(i), Value::str("row")]).unwrap();
    /// }
    /// let q = s.prepare("SELECT POSSIBLE x FROM t WHERE x >= ?").unwrap();
    /// assert_eq!(s.execute_prepared(&q, &[Value::Int(1)]).unwrap().rows().len(), 2);
    /// ```
    pub fn prepare(&self, sql: &str) -> SessionResult<Prepared> {
        let (stmt, params) = parse_counting_params(sql)
            .map_err(|source| SessionError::Parse { sql: sql.to_string(), source })?;
        Ok(Prepared { stmt, params })
    }

    fn prepare_unparameterized(&self, sql: &str) -> SessionResult<Prepared> {
        let p = self.prepare(sql)?;
        if p.params > 0 {
            return Err(SessionError::exec(Error::InvalidExpr(format!(
                "statement has {} unbound ? parameter(s); use prepare + execute_prepared",
                p.params
            ))));
        }
        Ok(p)
    }

    /// Binds `params` into a prepared statement and executes it.
    pub fn execute_prepared(
        &mut self,
        prepared: &Prepared,
        params: &[Value],
    ) -> SessionResult<QueryResult> {
        let stmt = prepared.bind(params)?;
        self.run(&stmt)
    }

    /// Opens a transaction and returns a guard that rolls back on drop
    /// unless [`Transaction::commit`] is called — the typed equivalent of
    /// `BEGIN` … `COMMIT`/`ROLLBACK`. On a durable session the whole
    /// transaction commits as one WAL record under one fsync.
    ///
    /// ```
    /// use maybms_sql::Session;
    ///
    /// let mut s = Session::new();
    /// s.execute("CREATE TABLE t (x INT)").unwrap();
    /// {
    ///     let mut txn = s.transaction().unwrap();
    ///     txn.execute("INSERT INTO t VALUES (1)").unwrap();
    ///     // dropped without commit: rolled back
    /// }
    /// assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 0);
    /// let mut txn = s.transaction().unwrap();
    /// txn.execute("INSERT INTO t VALUES (2)").unwrap();
    /// txn.commit().unwrap();
    /// assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 1);
    /// ```
    pub fn transaction(&mut self) -> SessionResult<Transaction<'_>> {
        self.run(&Statement::Begin)?;
        Ok(Transaction { session: self, open: true })
    }

    /// Executes a parsed statement. Outside a transaction, a mutation
    /// that succeeded in memory is appended to the write-ahead log (and
    /// fsynced) before this returns — once you have the `Ok`, the
    /// statement survives a crash. Inside a transaction, the record is
    /// buffered until `COMMIT` (which appends the whole group under a
    /// single fsync).
    pub fn run(&mut self, stmt: &Statement) -> SessionResult<QueryResult> {
        if self.read_only {
            let refused = match stmt {
                s if wire::is_mutation(s) => Some(statement_kind(s)),
                Statement::Begin | Statement::Commit | Statement::Rollback
                | Statement::Savepoint { .. } | Statement::RollbackTo { .. }
                | Statement::Checkpoint { .. } => Some(statement_kind(stmt)),
                _ => None,
            };
            if let Some(statement) = refused {
                return Err(SessionError::ReadOnlyReplica { statement });
            }
        }
        // Fail fast on a poisoned store or a degraded session — *before*
        // the mutation touches memory, so the in-memory state never
        // diverges further from what disk can hold. `COMMIT`/`ROLLBACK`
        // pass (an open transaction must be resolvable) and so does
        // `CHECKPOINT` (the retry path that clears degradation; a
        // poisoned store refuses it itself).
        if wire::is_mutation(stmt) || matches!(stmt, Statement::Begin) {
            if let Some(reason) = self.storage.as_ref().and_then(Database::poison_reason) {
                return Err(SessionError::storage(Error::Storage(format!(
                    "database is poisoned ({reason}); writes are refused until \
                     the database is reopened"
                ))));
            }
            if let Some(reason) = &self.degraded {
                return Err(SessionError::Degraded { reason: reason.clone() });
            }
        }
        match stmt {
            Statement::Begin => return self.begin_txn(),
            Statement::Commit => return self.commit_txn(),
            Statement::Rollback => return self.rollback_txn(),
            Statement::Savepoint { name } => return self.savepoint_txn(name),
            Statement::RollbackTo { name } => return self.rollback_to_savepoint(name),
            Statement::Checkpoint { .. } if self.txn.is_some() => {
                return Err(SessionError::txn(
                    "CHECKPOINT inside a transaction (commit or roll back first; \
                     a snapshot must not capture uncommitted state)",
                ));
            }
            _ => {}
        }
        let result = self.apply(stmt)?;
        if wire::is_mutation(stmt) {
            if let Some(txn) = &mut self.txn {
                txn.stmts += 1;
            }
        }
        if wire::is_mutation(stmt) && self.storage.is_some() {
            match wire::encode_statement(stmt) {
                Ok(record) => {
                    if let Some(txn) = &mut self.txn {
                        txn.buffered.push(record);
                    } else if let Some(db) = &mut self.storage {
                        if let Err(e) = db.append(&record) {
                            // Memory has the mutation but the log may not
                            // (after a failed fsync nobody knows — see
                            // `Database::append`). The append already
                            // poisoned the handle, so *later* mutations are
                            // refused at the top of `run` and the on-disk
                            // prefix can never diverge further. The store
                            // stays attached so callers can inspect
                            // `poison_reason`; reopening the path recovers
                            // the last durable state.
                            return Err(SessionError::storage(Error::Storage(format!(
                                "statement applied in memory but is NOT durable (WAL \
                                 append failed and poisoned the database; writes are \
                                 refused until it is reopened): {e}"
                            ))));
                        }
                    }
                }
                Err(e) => {
                    // unreachable for mutations (their encoding is total),
                    // kept as a loud failure rather than a silent WAL gap
                    return Err(SessionError::storage(Error::Storage(format!(
                        "statement applied in memory but could not be encoded for the \
                         write-ahead log: {e}"
                    ))));
                }
            }
        }
        Ok(result)
    }

    fn begin_txn(&mut self) -> SessionResult<QueryResult> {
        if self.txn.is_some() {
            return Err(SessionError::txn(
                "BEGIN inside a transaction (nested transactions are not supported)",
            ));
        }
        self.txn = Some(TxnState {
            // O(1): the snapshot is an Arc share, not a deep copy — the
            // first mutation inside the transaction copies-on-write
            saved: Arc::clone(&self.wsd),
            saved_cleaning: self.cleaning_log.len(),
            stmts: 0,
            buffered: Vec::new(),
            savepoints: Vec::new(),
        });
        Ok(QueryResult::Text("BEGIN".into()))
    }

    fn commit_txn(&mut self) -> SessionResult<QueryResult> {
        let Some(txn) = self.txn.take() else {
            return Err(SessionError::txn("COMMIT without an open transaction"));
        };
        let n = txn.stmts;
        if let Some(db) = &mut self.storage {
            if !txn.buffered.is_empty() {
                let group = wire::encode_commit_group(&txn.buffered);
                if let Err(e) = db.append(&group) {
                    // Unlike autocommit, the pre-`BEGIN` snapshot is still
                    // at hand — so the failed commit rolls back *cleanly*:
                    // memory returns to the exact state the disk holds, no
                    // divergence at all. The append poisoned the handle
                    // (durability of the group is unknown), so further
                    // writes are refused until reopen, but every query
                    // against this session remains truthful.
                    self.wsd = txn.saved;
                    self.cleaning_log.truncate(txn.saved_cleaning);
                    return Err(SessionError::storage(Error::Storage(format!(
                        "COMMIT failed; the transaction rolled back in memory and the \
                         database is poisoned (writes are refused until it is \
                         reopened): {e}"
                    ))));
                }
            }
        }
        Ok(QueryResult::Text(format!("COMMIT ({n} statement(s))")))
    }

    fn rollback_txn(&mut self) -> SessionResult<QueryResult> {
        let Some(txn) = self.txn.take() else {
            return Err(SessionError::txn("ROLLBACK without an open transaction"));
        };
        let n = txn.stmts;
        self.wsd = txn.saved;
        self.cleaning_log.truncate(txn.saved_cleaning);
        Ok(QueryResult::Text(format!("ROLLBACK ({n} statement(s) undone)")))
    }

    fn savepoint_txn(&mut self, name: &str) -> SessionResult<QueryResult> {
        // snapshot before borrowing the transaction state mutably (an
        // O(1) Arc share, like BEGIN's)
        let saved = Arc::clone(&self.wsd);
        let saved_cleaning = self.cleaning_log.len();
        let Some(txn) = &mut self.txn else {
            return Err(SessionError::txn("SAVEPOINT without an open transaction"));
        };
        txn.savepoints.push(SavepointMark {
            name: name.to_string(),
            saved,
            saved_cleaning,
            stmts: txn.stmts,
            buffered: txn.buffered.len(),
        });
        Ok(QueryResult::Text(format!("SAVEPOINT {name}")))
    }

    fn rollback_to_savepoint(&mut self, name: &str) -> SessionResult<QueryResult> {
        let Some(txn) = &mut self.txn else {
            return Err(SessionError::txn(
                "ROLLBACK TO without an open transaction",
            ));
        };
        let Some(i) = txn.savepoints.iter().rposition(|m| m.name == name) else {
            return Err(SessionError::txn(format!("no savepoint named {name}")));
        };
        let mark = &txn.savepoints[i];
        let undone = txn.stmts - mark.stmts;
        let restored = Arc::clone(&mark.saved);
        let saved_cleaning = mark.saved_cleaning;
        txn.stmts = mark.stmts;
        txn.buffered.truncate(mark.buffered);
        // later savepoints die; `name` itself stays valid for re-use
        txn.savepoints.truncate(i + 1);
        self.wsd = restored;
        self.cleaning_log.truncate(saved_cleaning);
        Ok(QueryResult::Text(format!(
            "ROLLBACK TO {name} ({undone} statement(s) undone)"
        )))
    }

    /// Statement dispatch without WAL logging (recovery replays through
    /// this, and so does the replication follower — the records were
    /// committed and logged on the primary; [`Session::run`] adds
    /// transaction control, the read-only gate and the logging).
    pub(crate) fn apply(&mut self, stmt: &Statement) -> SessionResult<QueryResult> {
        match stmt {
            Statement::Select(sel) => self.run_select(sel),
            Statement::CreateTable { name, columns } => {
                let schema = Schema::from_columns(
                    columns
                        .iter()
                        .map(|(n, t)| Column::new(n.clone(), *t))
                        .collect(),
                );
                Arc::make_mut(&mut self.wsd)
                    .add_relation(name.clone(), schema)
                    .map_err(SessionError::exec)?;
                Ok(QueryResult::Text(format!("created table {name}")))
            }
            Statement::DropTable { name } => {
                let wsd = Arc::make_mut(&mut self.wsd);
                wsd.remove_relation(name).map_err(SessionError::exec)?;
                maybms_core::normalize::normalize(wsd);
                Ok(QueryResult::Text(format!("dropped table {name}")))
            }
            Statement::RenameTable { from, to } => {
                // `rename_relation` restores the source relation when the
                // target name is taken (PR 1 regression), so a failed
                // rename must leave `from` queryable.
                Arc::make_mut(&mut self.wsd)
                    .rename_relation(from, to.clone())
                    .map_err(SessionError::exec)?;
                Ok(QueryResult::Text(format!("renamed table {from} to {to}")))
            }
            Statement::Insert { table, rows } => {
                self.apply_insert(table, rows).map_err(SessionError::exec)
            }
            Statement::Delete { table, pred } => {
                // DML on a scratch copy: a failing statement (bad predicate,
                // arithmetic error) must not leak partial edits — memory has
                // to be all-or-nothing, like the WAL.
                let mut scratch = (*self.wsd).clone();
                let report =
                    delete_op(&mut scratch, table, pred.as_ref()).map_err(SessionError::exec)?;
                self.wsd = Arc::new(scratch);
                Ok(QueryResult::Text(format!(
                    "deleted {} tuple(s) from {table} ({} in every world, {} conditionally)",
                    report.total(),
                    report.certain,
                    report.conditioned
                )))
            }
            Statement::Update { table, set, pred } => {
                let assignments = set
                    .iter()
                    .map(|(col, v)| match v {
                        InsertValue::Certain(v) => Ok((col.clone(), v.clone())),
                        InsertValue::Param(i) => Err(Error::InvalidExpr(format!(
                            "unbound parameter ?{} in UPDATE (bind prepared-statement \
                             parameters first)",
                            i + 1
                        ))),
                        InsertValue::Uniform(_) | InsertValue::Weighted(_) => {
                            Err(Error::InvalidExpr(
                                "or-set values are not supported in UPDATE SET \
                                 (INSERT introduces uncertainty)"
                                    .into(),
                            ))
                        }
                    })
                    .collect::<Result<Vec<_>>>()
                    .map_err(SessionError::exec)?;
                let mut scratch = (*self.wsd).clone();
                let report = update_op(&mut scratch, table, &assignments, pred.as_ref())
                    .map_err(SessionError::exec)?;
                self.wsd = Arc::new(scratch);
                Ok(QueryResult::Text(format!(
                    "updated {} tuple(s) in {table} ({} in every world, {} conditionally)",
                    report.total(),
                    report.certain,
                    report.conditioned
                )))
            }
            Statement::Repair(r) => {
                let constraint = match r {
                    RepairStmt::Key { table, columns } => Constraint::Key {
                        rel: table.clone(),
                        cols: columns.clone(),
                    },
                    RepairStmt::Fd { table, lhs, rhs } => Constraint::Fd {
                        rel: table.clone(),
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                    },
                    RepairStmt::Check { table, pred } => Constraint::TupleCheck {
                        rel: table.clone(),
                        pred: pred.clone(),
                    },
                };
                // Chase on a scratch copy: a failing REPAIR (no consistent
                // world) may abort mid-chase, and partial deletions must
                // not leak into session state — the WAL only records
                // statements that fully succeeded, so memory has to be
                // all-or-nothing too.
                let mut cleaned = (*self.wsd).clone();
                let report =
                    clean(&mut cleaned, &[constraint]).map_err(SessionError::exec)?;
                self.wsd = Arc::new(cleaned);
                let msg = format!(
                    "repaired: {} violating row group(s) removed, {:.4} probability mass discarded",
                    report.deleted_rows, report.removed_probability
                );
                self.cleaning_log.push(report);
                Ok(QueryResult::Text(msg))
            }
            Statement::Explain { stmt, analyze } => match stmt.as_ref() {
                Statement::Select(sel) => {
                    let raw = lower_select(sel).map_err(SessionError::plan)?;
                    let opt = optimize_with_stats(&raw, &self.wsd, &mut self.stats)
                        .map_err(SessionError::plan)?;
                    let chosen = if self.optimize_plans { &opt } else { &raw };
                    let compile_began = Instant::now();
                    let phys = compile(chosen, &self.wsd).map_err(SessionError::plan)?;
                    let compile_elapsed = compile_began.elapsed();
                    // ANALYZE: execute and sample each node's actual output
                    // template count and wall-clock time (inclusive of its
                    // children), in the same pre-order the renderer walks
                    // below.
                    let actuals = if *analyze {
                        let began = Instant::now();
                        let (_, samples) = Executor::new(&self.pool)
                            .run_traced(&phys, &self.wsd)
                            .map_err(SessionError::exec)?;
                        Some((samples, began.elapsed()))
                    } else {
                        None
                    };
                    let wsd = &self.wsd;
                    let stats = &mut self.stats;
                    let mut idx = 0usize;
                    let physical = explain_physical_annotated(&phys, |op| {
                        let mut note = String::new();
                        if let Ok(e) = estimate_phys(op, wsd, stats) {
                            note = format!("  (est rows={:.0} cost={:.0}", e.rows, e.cost);
                            if let Some(n) = actuals.as_ref().and_then(|(s, _)| s.get(idx)) {
                                note.push_str(&format!(
                                    " actual rows={} time={}",
                                    n.rows,
                                    fmt_duration(n.elapsed)
                                ));
                            }
                            note.push(')');
                        }
                        idx += 1;
                        note
                    });
                    let mut out = format!(
                        "-- logical plan\n{}-- optimized plan\n{}-- physical plan (workers={})\n{}",
                        explain(&raw),
                        explain(&opt),
                        self.pool.workers(),
                        physical
                    );
                    if let Some((_, exec_elapsed)) = &actuals {
                        out.push_str(&format!(
                            "-- timing\ncompile {} · execute {}\n",
                            fmt_duration(compile_elapsed),
                            fmt_duration(*exec_elapsed)
                        ));
                    }
                    Ok(QueryResult::Text(out))
                }
                other => Ok(QueryResult::Text(format!("{other:?}"))),
            },
            Statement::ShowTables => {
                let names: Vec<&str> = self.wsd.relation_names().collect();
                Ok(QueryResult::Text(names.join("\n")))
            }
            Statement::ShowMetrics { like } => {
                let schema = Schema::new(vec![
                    ("name", ColumnType::Str),
                    ("kind", ColumnType::Str),
                    ("value", ColumnType::Str),
                ]);
                let mut r = Relation::empty(schema);
                for (name, v) in maybms_obs::global().snapshot() {
                    if let Some(p) = like {
                        if !like_match(p, &name) {
                            continue;
                        }
                    }
                    let (kind, value) = match v {
                        MetricValue::Counter(n) => ("counter", n.to_string()),
                        MetricValue::Gauge(n) => ("gauge", n.to_string()),
                        MetricValue::Histogram(_, _, sum, count) => {
                            ("histogram", format!("count={count} sum={sum}"))
                        }
                    };
                    r.push_unchecked(Tuple::new(vec![
                        Value::str(name),
                        Value::str(kind),
                        Value::str(value),
                    ]));
                }
                Ok(QueryResult::Table(r))
            }
            Statement::ShowSlowQueries => {
                let schema = Schema::new(vec![
                    ("sql", ColumnType::Str),
                    ("total_ms", ColumnType::Float),
                    ("phases", ColumnType::Str),
                ]);
                let mut r = Relation::empty(schema);
                for q in self.slow_log.entries() {
                    r.push_unchecked(Tuple::new(vec![
                        Value::str(q.sql),
                        Value::Float(q.total.as_secs_f64() * 1e3),
                        Value::str(q.phases),
                    ]));
                }
                Ok(QueryResult::Table(r))
            }
            Statement::ShowReplicationStatus => {
                let schema = Schema::new(vec![
                    ("role", ColumnType::Str),
                    ("applied_lsn", ColumnType::Int),
                    ("primary_lsn", ColumnType::Int),
                    ("lag_lsns", ColumnType::Int),
                    ("seconds_since_contact", ColumnType::Float),
                    ("stale", ColumnType::Bool),
                ]);
                let row = match &self.repl_status {
                    Some(status) => {
                        let applied = status.applied_lsn();
                        let primary = status.primary_lsn();
                        let since = status.since_last_contact();
                        vec![
                            Value::str("replica"),
                            Value::Int(applied as i64),
                            Value::Int(primary as i64),
                            Value::Int(primary.saturating_sub(applied) as i64),
                            Value::Float(since.as_secs_f64()),
                            Value::Bool(since > STALE_AFTER),
                        ]
                    }
                    None => {
                        // Not a follower: a durable session is (or can be)
                        // a primary, a detached one is standalone. Either
                        // way it *is* its own source of truth — zero lag.
                        let lsn = self.last_lsn().unwrap_or(0) as i64;
                        let role = if self.storage.is_some() { "primary" } else { "standalone" };
                        vec![
                            Value::str(role),
                            Value::Int(lsn),
                            Value::Int(lsn),
                            Value::Int(0),
                            Value::Float(0.0),
                            Value::Bool(false),
                        ]
                    }
                };
                let mut r = Relation::empty(schema);
                r.push_unchecked(Tuple::new(row));
                Ok(QueryResult::Table(r))
            }
            Statement::Checkpoint { full } => {
                let Some(db) = self.storage.as_mut() else {
                    return Err(SessionError::storage(Error::Storage(
                        "CHECKPOINT requires a session opened on a database file \
                         (use Session::open or Session::attach)"
                            .into(),
                    )));
                };
                let payload = encode_wsd(&self.wsd);
                let result = if *full {
                    db.checkpoint_full(&payload)
                } else {
                    db.checkpoint(&payload)
                };
                let generation = db.generation();
                let poisoned = db.is_poisoned();
                match result {
                    Ok(kind) => {
                        // A published snapshot proves the disk holds the
                        // full current state again — degradation is over.
                        self.degraded = None;
                        Ok(QueryResult::Text(match kind {
                            CheckpointKind::Full { pages } => format!(
                                "checkpointed generation {generation} (full: {} bytes over \
                                 {pages} page(s), WAL reset)",
                                payload.len()
                            ),
                            CheckpointKind::Incremental { changed_pages, total_pages } => {
                                format!(
                                    "checkpointed generation {generation} (incremental: \
                                     {changed_pages} of {total_pages} page(s) rewritten, \
                                     WAL reset)"
                                )
                            }
                            CheckpointKind::Unchanged => format!(
                                "checkpoint skipped: nothing committed since generation \
                                 {generation}"
                            ),
                        }))
                    }
                    // Failure after the point of no return (snapshot
                    // published, WAL swap failed): the handle poisoned
                    // itself, nothing to soften here.
                    Err(e) => {
                        if poisoned {
                            return Err(SessionError::storage(e));
                        }
                        // Failure *before* publishing (typically ENOSPC on
                        // the temp file): the old snapshot + WAL are intact
                        // and cover every committed statement, so degrade
                        // gracefully — queries keep working, mutations are
                        // refused until a retried CHECKPOINT succeeds.
                        let reason = format!("checkpoint failed before publishing: {e}");
                        self.degraded = Some(reason.clone());
                        Err(SessionError::Degraded { reason })
                    }
                }
            }
            Statement::Begin
            | Statement::Commit
            | Statement::Rollback
            | Statement::Savepoint { .. }
            | Statement::RollbackTo { .. } => {
                // transaction control never reaches the WAL, so replay
                // (which drives apply directly) cannot hit this arm
                Err(SessionError::txn(
                    "transaction control must go through Session::run",
                ))
            }
        }
    }

    fn apply_insert(&mut self, table: &str, rows: &[Vec<InsertValue>]) -> Result<QueryResult> {
        // Build and type-check every row before pushing any: an
        // INSERT either applies fully or not at all. (The WAL only
        // records statements that succeeded; a partially applied
        // failure would make replay diverge from memory.)
        let schema = self.wsd.relation(table)?.schema.clone();
        let mut staged = Vec::with_capacity(rows.len());
        for row in rows {
            let cells = row
                .iter()
                .map(|v| match v {
                    InsertValue::Certain(v) => Ok(OrSetCell::certain(v.clone())),
                    InsertValue::Uniform(vs) => OrSetCell::uniform(vs.clone()),
                    InsertValue::Weighted(ws) => OrSetCell::weighted(ws.clone()),
                    InsertValue::Param(i) => Err(Error::InvalidExpr(format!(
                        "unbound parameter ?{} in INSERT (bind prepared-statement \
                         parameters first)",
                        i + 1
                    ))),
                })
                .collect::<Result<Vec<_>>>()?;
            if cells.len() != schema.len() {
                return Err(Error::TypeError(format!(
                    "tuple arity {} vs schema {}",
                    cells.len(),
                    schema.len()
                )));
            }
            for (i, c) in cells.iter().enumerate() {
                for (v, _) in c.alternatives() {
                    if !v.matches_type(schema.column(i).ty) {
                        return Err(Error::TypeError(format!(
                            "value {v} not valid for column {}",
                            schema.column(i).name
                        )));
                    }
                }
            }
            staged.push(cells);
        }
        let n = staged.len();
        let wsd = Arc::make_mut(&mut self.wsd);
        for cells in staged {
            wsd.push_orset(table, cells)?;
        }
        Ok(QueryResult::Text(format!("inserted {n} tuple(s) into {table}")))
    }

    fn run_select(&mut self, sel: &SelectStmt) -> SessionResult<QueryResult> {
        if sel.prob_threshold.is_some() && (!sel.prob || sel.items.is_empty()) {
            return Err(SessionError::plan(Error::InvalidExpr(
                "HAVING PROB() requires PROB() and answer columns in the select list".into(),
            )));
        }
        let mut result = self.run_select_inner(sel)?;
        // HAVING PROB() filters on the confidence column (always last).
        if let Some((op, threshold)) = sel.prob_threshold {
            if let QueryResult::Table(t) = result {
                let last = t.schema().len() - 1;
                let rows: Vec<_> = t
                    .rows()
                    .iter()
                    .filter(|r| {
                        op.apply(&r[last], &Value::Float(threshold)).unwrap_or(false)
                    })
                    .cloned()
                    .collect();
                result = QueryResult::Table(Relation::from_rows_unchecked(
                    t.schema().clone(),
                    rows,
                ));
            }
        }
        // ORDER BY / LIMIT post-process tabular results.
        if sel.order_by.is_empty() && sel.limit.is_none() {
            return Ok(result);
        }
        match result {
            QueryResult::Table(t) => {
                let mut t = if sel.order_by.is_empty() {
                    t
                } else {
                    let keys: Vec<(&str, bool)> = sel
                        .order_by
                        .iter()
                        .map(|(c, asc)| (c.as_str(), *asc))
                        .collect();
                    maybms_relational::ops::sort_by(&t, &keys).map_err(SessionError::exec)?
                };
                if let Some(n) = sel.limit {
                    let rows: Vec<_> = t.take_rows().into_iter().take(n).collect();
                    t = Relation::from_rows_unchecked(t.schema().clone(), rows);
                }
                Ok(QueryResult::Table(t))
            }
            QueryResult::WorldSet(_) | QueryResult::Text(_) => {
                Err(SessionError::plan(Error::InvalidExpr(
                    "ORDER BY / LIMIT require a tabular result \
                     (POSSIBLE, CERTAIN, PROB() or EXPECTED)"
                        .into(),
                )))
            }
        }
    }

    fn run_select_inner(&mut self, sel: &SelectStmt) -> SessionResult<QueryResult> {
        let begin = Instant::now();
        let raw = lower_select(sel).map_err(SessionError::plan)?;
        let plan = if self.optimize_plans {
            optimize_with_stats(&raw, &self.wsd, &mut self.stats)
                .map_err(SessionError::plan)?
        } else {
            raw
        };
        if let Some(t) = self.trace.as_mut() {
            t.push("optimize", begin);
        }
        // compile the logical tree to a physical plan and execute it on
        // the session's worker pool
        let begin = Instant::now();
        let phys = compile(&plan, &self.wsd).map_err(SessionError::plan)?;
        if let Some(t) = self.trace.as_mut() {
            t.push("compile", begin);
        }
        let begin = Instant::now();
        let answer =
            Executor::new(&self.pool).run(&phys, &self.wsd).map_err(SessionError::exec)?;
        if let Some(t) = self.trace.as_mut() {
            t.push("execute", begin);
        }
        let schema = answer.relation("result").map_err(SessionError::exec)?.schema.clone();

        if let Some(agg) = &sel.expected {
            // EXPECTED COUNT() / EXPECTED SUM(col): one scalar row.
            let (name, v) = match agg {
                crate::ast::ExpectedAgg::Count => (
                    "expected_count",
                    prob::expected_count_in(&answer, "result", &self.pool)
                        .map_err(SessionError::exec)?,
                ),
                crate::ast::ExpectedAgg::Sum(col) => (
                    "expected_sum",
                    prob::expected_sum_in(&answer, "result", col, &self.pool)
                        .map_err(SessionError::exec)?,
                ),
            };
            let s = Schema::new(vec![(name, ColumnType::Float)]);
            let mut r = Relation::empty(s);
            r.push_unchecked(Tuple::new(vec![Value::Float(v)]));
            return Ok(QueryResult::Table(r));
        }

        match (sel.mode, sel.prob) {
            (WorldMode::AllWorlds, false) => Ok(QueryResult::WorldSet(answer)),
            (WorldMode::AllWorlds, true) | (WorldMode::Possible, true) => {
                if sel.items.is_empty() {
                    // SELECT PROB() FROM ... : probability of non-emptiness
                    let p = prob::nonempty_confidence_in(&answer, "result", &self.pool)
                        .map_err(SessionError::exec)?;
                    let s = Schema::new(vec![("prob", ColumnType::Float)]);
                    let mut r = Relation::empty(s);
                    r.push_unchecked(Tuple::new(vec![Value::Float(p)]));
                    Ok(QueryResult::Table(r))
                } else {
                    // answer tuples with their confidences
                    let conf = prob::tuple_confidence_in(&answer, "result", &self.pool)
                        .map_err(SessionError::exec)?;
                    let with_p = schema.concat(&Schema::new(vec![("prob", ColumnType::Float)]));
                    let mut r = Relation::empty(with_p);
                    for (t, p) in conf {
                        let mut vals = t.into_values();
                        vals.push(Value::Float(p));
                        r.push_unchecked(Tuple::new(vals));
                    }
                    Ok(QueryResult::Table(r))
                }
            }
            (WorldMode::Possible, false) => {
                let tuples = prob::possible_tuples_in(&answer, "result", &self.pool)
                    .map_err(SessionError::exec)?;
                Ok(QueryResult::Table(Relation::from_rows_unchecked(schema, tuples)))
            }
            (WorldMode::Certain, _) => {
                let tuples = prob::certain_tuples_in(&answer, "result", &self.pool)
                    .map_err(SessionError::exec)?;
                Ok(QueryResult::Table(Relation::from_rows_unchecked(schema, tuples)))
            }
        }
    }
}

impl From<Wsd> for Session {
    fn from(wsd: Wsd) -> Session {
        Session::with_wsd(wsd)
    }
}

/// An open transaction on a [`Session`]: `BEGIN` already ran; dropping
/// the guard without [`Transaction::commit`] rolls back.
#[derive(Debug)]
pub struct Transaction<'a> {
    session: &'a mut Session,
    open: bool,
}

impl Transaction<'_> {
    /// Parses and executes one statement inside the transaction.
    pub fn execute(&mut self, sql: &str) -> SessionResult<QueryResult> {
        self.session.execute(sql)
    }

    /// Executes a parsed statement inside the transaction.
    pub fn run(&mut self, stmt: &Statement) -> SessionResult<QueryResult> {
        self.session.run(stmt)
    }

    /// Binds and executes a prepared statement inside the transaction.
    pub fn execute_prepared(
        &mut self,
        prepared: &Prepared,
        params: &[Value],
    ) -> SessionResult<QueryResult> {
        self.session.execute_prepared(prepared, params)
    }

    /// Commits: appends the buffered records as one commit group (single
    /// fsync on a durable session) and closes the transaction.
    pub fn commit(mut self) -> SessionResult<()> {
        self.open = false;
        self.session.run(&Statement::Commit).map(|_| ())
    }

    /// Rolls back explicitly (dropping the guard does the same).
    pub fn rollback(mut self) -> SessionResult<()> {
        self.open = false;
        self.session.run(&Statement::Rollback).map(|_| ())
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if self.open {
            // the transaction may already be closed if the user executed
            // COMMIT/ROLLBACK as SQL through the guard; ignore that error
            // maybms-lint: allow(poison-discipline) -- Drop cannot propagate; a failed rollback here means the transaction already ended
            let _ = self.session.run(&Statement::Rollback);
        }
    }
}

/// SQL `LIKE` matching with `%` (any run) and `_` (any one character)
/// wildcards, case-sensitive, over `SHOW METRICS` names. Iterative
/// two-pointer matching with backtracking to the last `%` — linear in
/// practice, no recursion.
fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern pos after %, text pos it matched)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // extend the last %'s match by one character and retry
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// A short human name for a statement, for error messages.
fn statement_kind(stmt: &Statement) -> String {
    match stmt {
        Statement::CreateTable { .. } => "CREATE TABLE".into(),
        Statement::DropTable { .. } => "DROP TABLE".into(),
        Statement::RenameTable { .. } => "ALTER TABLE".into(),
        Statement::Insert { .. } => "INSERT".into(),
        Statement::Delete { .. } => "DELETE".into(),
        Statement::Update { .. } => "UPDATE".into(),
        Statement::Repair(_) => "REPAIR".into(),
        Statement::Checkpoint { .. } => "CHECKPOINT".into(),
        Statement::Begin => "BEGIN".into(),
        Statement::Commit => "COMMIT".into(),
        Statement::Rollback => "ROLLBACK".into(),
        Statement::Savepoint { .. } => "SAVEPOINT".into(),
        Statement::RollbackTo { .. } => "ROLLBACK TO".into(),
        other => format!("{other:?}"),
    }
}

/// Builds a session preloaded with the paper's medical example, used by
/// docs, examples and tests.
pub fn medical_session() -> Session {
    Session::with_wsd(maybms_core::examples::medical_wsd())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err_contains(r: SessionResult<QueryResult>, what: &str) {
        match r {
            Err(e) => assert!(e.to_string().contains(what), "unexpected error {e}"),
            Ok(v) => panic!("expected error containing {what}, got {v:?}"),
        }
    }

    #[test]
    fn paper_query_via_sql() {
        let mut s = medical_session();
        let r = s
            .execute("SELECT test FROM R WHERE diagnosis = 'pregnancy'")
            .unwrap();
        let wsd = r.world_set().expect("plain select yields a world-set");
        // two worlds: {ultrasound} with 0.4 and {} with 0.6
        let ws = wsd.to_worldset(100).unwrap();
        assert_eq!(ws.merged().len(), 2);

        let r2 = s
            .execute("SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy'")
            .unwrap();
        let t = r2.table().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::str("ultrasound"));
        assert_eq!(t.rows()[0][1], Value::Float(0.4));
    }

    #[test]
    fn possible_and_certain() {
        let mut s = medical_session();
        let poss = s.execute("SELECT POSSIBLE diagnosis FROM R").unwrap();
        assert_eq!(poss.table().unwrap().len(), 3); // pregnancy, hypothyroidism, obesity
        let cert = s.execute("SELECT CERTAIN diagnosis FROM R").unwrap();
        assert_eq!(cert.table().unwrap().len(), 1); // obesity
        assert_eq!(cert.table().unwrap().rows()[0][0], Value::str("obesity"));
    }

    #[test]
    fn prob_of_nonempty() {
        let mut s = medical_session();
        let r = s
            .execute("SELECT PROB() FROM R WHERE test = 'ultrasound'")
            .unwrap();
        let t = r.table().unwrap();
        let p = t.rows()[0][0].as_f64().unwrap();
        assert!((p - 0.4).abs() < 1e-9);
    }

    #[test]
    fn ddl_dml_roundtrip() {
        let mut s = Session::new();
        s.execute("CREATE TABLE person (ssn INT, name TEXT)").unwrap();
        s.execute("INSERT INTO person VALUES (1, 'ann'), ({2: 0.5, 3: 0.5}, 'bob')")
            .unwrap();
        let r = s.execute("SELECT POSSIBLE ssn, PROB() FROM person").unwrap();
        let t = r.table().unwrap();
        assert_eq!(t.len(), 3);
        // world count: 2
        assert_eq!(s.wsd().world_count().to_u64(), Some(2));
        s.execute("DROP TABLE person").unwrap();
        err_contains(s.execute("SELECT * FROM person"), "unknown relation");
    }

    #[test]
    fn delete_via_sql() {
        let mut s = Session::new();
        s.execute_script(
            "CREATE TABLE p (ssn INT, name TEXT); \
             INSERT INTO p VALUES ({1: 0.4, 2: 0.6}, 'ann'), (2, 'bob')",
        )
        .unwrap();
        // bob certainly matches: removed from every world
        let r = s.execute("DELETE FROM p WHERE name = 'bob'").unwrap();
        assert!(r.ack().contains("1 in every world"), "{}", r.ack());
        // ann possibly matches: survives only where ssn = 2
        let r2 = s.execute("DELETE FROM p WHERE ssn = 1").unwrap();
        assert!(r2.ack().contains("1 conditionally"), "{}", r2.ack());
        let t = s.execute("SELECT POSSIBLE ssn, name, PROB() FROM p").unwrap();
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(2));
        assert_eq!(t.rows()[0][2], Value::Float(0.6), "world probabilities untouched");
        // DELETE without WHERE empties the relation but keeps it
        s.execute("DELETE FROM p").unwrap();
        assert_eq!(s.execute("SELECT POSSIBLE ssn FROM p").unwrap().rows().len(), 0);
        err_contains(s.execute("DELETE FROM missing"), "unknown relation");
    }

    #[test]
    fn update_via_sql() {
        let mut s = Session::new();
        s.execute_script(
            "CREATE TABLE p (ssn INT, name TEXT); \
             INSERT INTO p VALUES ({1: 0.4, 2: 0.6}, 'ann'), (3, 'bob')",
        )
        .unwrap();
        let r = s.execute("UPDATE p SET name = 'anna' WHERE ssn = 1").unwrap();
        assert!(r.ack().contains("1 conditionally"), "{}", r.ack());
        let t = s
            .execute("SELECT POSSIBLE ssn, name, PROB() FROM p ORDER BY ssn")
            .unwrap();
        let rows = t.rows();
        // worlds: (1, anna) p=0.4, (2, ann) p=0.6, (3, bob) certain
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][1], Value::str("anna"));
        assert_eq!(rows[0][2], Value::Float(0.4));
        assert_eq!(rows[1][1], Value::str("ann"));
        // type errors and unknown columns are execution errors
        err_contains(s.execute("UPDATE p SET ssn = 'x'"), "type error");
        err_contains(s.execute("UPDATE p SET nope = 1"), "unknown column");
        err_contains(
            s.execute("UPDATE p SET name = {1: 0.5, 2: 0.5}"),
            "invalid expression",
        );
    }

    #[test]
    fn prepared_statements_bind_many() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (x INT, tag TEXT)").unwrap();
        let ins = s.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
        assert_eq!(ins.param_count(), 2);
        for i in 0..5i64 {
            s.execute_prepared(&ins, &[Value::Int(i), Value::str("row")]).unwrap();
        }
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 5);
        // parameters in predicates too
        let q = s.prepare("SELECT POSSIBLE x FROM t WHERE x >= ?").unwrap();
        assert_eq!(s.execute_prepared(&q, &[Value::Int(3)]).unwrap().rows().len(), 2);
        let del = s.prepare("DELETE FROM t WHERE x = ?").unwrap();
        s.execute_prepared(&del, &[Value::Int(0)]).unwrap();
        assert_eq!(s.execute_prepared(&q, &[Value::Int(0)]).unwrap().rows().len(), 4);
        // wrong arity and unbound execution are rejected
        assert!(s.execute_prepared(&ins, &[Value::Int(1)]).is_err());
        err_contains(s.execute("INSERT INTO t VALUES (?, 'x')"), "unbound");
    }

    #[test]
    fn transactions_commit_and_rollback() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        s.execute("BEGIN").unwrap();
        assert!(s.in_transaction());
        s.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        // statements inside the transaction see their own writes
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 2);
        s.execute("ROLLBACK").unwrap();
        assert!(!s.in_transaction());
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 0);

        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (7)").unwrap();
        let r = s.execute("COMMIT").unwrap();
        assert!(r.ack().contains("COMMIT (1 statement(s))"), "{}", r.ack());
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 1);

        // misuse errors
        err_contains(s.execute("COMMIT"), "without an open transaction");
        err_contains(s.execute("ROLLBACK"), "without an open transaction");
        s.execute("BEGIN").unwrap();
        err_contains(s.execute("BEGIN"), "nested");
        err_contains(s.execute("CHECKPOINT"), "inside a transaction");
        s.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn savepoints_rewind_within_a_transaction() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        s.execute("SAVEPOINT a").unwrap();
        s.execute("INSERT INTO t VALUES (2)").unwrap();
        s.execute("SAVEPOINT b").unwrap();
        s.execute("INSERT INTO t VALUES (3)").unwrap();
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 3);

        let r = s.execute("ROLLBACK TO b").unwrap();
        assert!(r.ack().contains("1 statement(s) undone"), "{}", r.ack());
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 2);

        // `b` stays valid after rolling back to it
        s.execute("INSERT INTO t VALUES (4)").unwrap();
        s.execute("ROLLBACK TO SAVEPOINT b").unwrap();
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 2);

        // rolling back to `a` discards `b`
        s.execute("ROLLBACK TO a").unwrap();
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 1);
        err_contains(s.execute("ROLLBACK TO b"), "no savepoint named b");

        // the transaction is still open; COMMIT keeps the surviving rows
        let r = s.execute("COMMIT").unwrap();
        assert!(r.ack().contains("COMMIT"), "{}", r.ack());
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 1);

        // misuse outside a transaction
        err_contains(s.execute("SAVEPOINT z"), "without an open transaction");
        err_contains(s.execute("ROLLBACK TO z"), "without an open transaction");
    }

    #[test]
    fn savepoint_rollback_truncates_buffered_wal_records() {
        let path = db_path("savepoint-truncate");
        {
            let mut s = Session::open(&path).unwrap();
            s.execute("CREATE TABLE t (x INT)").unwrap();
            s.execute("BEGIN").unwrap();
            s.execute("INSERT INTO t VALUES (1)").unwrap();
            s.execute("SAVEPOINT a").unwrap();
            s.execute("INSERT INTO t VALUES (2)").unwrap();
            s.execute("ROLLBACK TO a").unwrap();
            s.execute("COMMIT").unwrap();
        }
        // recovery must replay only the statements that survived the
        // savepoint rollback
        let mut s = Session::open(&path).unwrap();
        let rows = s.execute("SELECT POSSIBLE x FROM t").unwrap();
        assert_eq!(rows.rows().len(), 1);
        rm_db(&path);
    }

    #[test]
    fn duplicate_savepoint_name_shadows_the_older_mark() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("SAVEPOINT a").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        s.execute("SAVEPOINT a").unwrap();
        s.execute("INSERT INTO t VALUES (2)").unwrap();
        // latest mark wins: only the second insert is undone
        s.execute("ROLLBACK TO a").unwrap();
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 1);
        s.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn explain_reports_estimates_and_analyze_actuals() {
        let mut s = medical_session();
        let txt = s
            .execute("EXPLAIN SELECT test FROM R WHERE diagnosis = 'pregnancy'")
            .unwrap()
            .ack()
            .to_string();
        assert!(txt.contains("est rows="), "estimates missing:\n{txt}");
        assert!(txt.contains("cost="), "costs missing:\n{txt}");
        assert!(!txt.contains("actual rows="), "plain EXPLAIN must not execute:\n{txt}");

        let txt = s
            .execute("EXPLAIN ANALYZE SELECT test FROM R WHERE diagnosis = 'pregnancy'")
            .unwrap()
            .ack()
            .to_string();
        assert!(txt.contains("actual rows="), "ANALYZE actuals missing:\n{txt}");
        // every physical node carries both estimate and actual
        let phys: Vec<&str> = txt
            .lines()
            .skip_while(|l| !l.starts_with("-- physical plan"))
            .skip(1)
            .take_while(|l| !l.starts_with("-- timing"))
            .collect();
        assert!(!phys.is_empty());
        for line in phys {
            assert!(line.contains("est rows="), "unannotated node: {line}\n{txt}");
            assert!(line.contains("actual rows="), "no actual on node: {line}\n{txt}");
            assert!(line.contains("time="), "no wall-clock time on node: {line}\n{txt}");
        }
        assert!(txt.contains("-- timing"), "phase timing footer missing:\n{txt}");
    }

    #[test]
    fn show_metrics_returns_live_rows() {
        let mut s = medical_session();
        // touch the executor so at least the exec.rows counters exist
        s.execute("SELECT POSSIBLE diagnosis FROM R").unwrap();
        let r = s.execute("SHOW METRICS").unwrap();
        let t = r.table().expect("SHOW METRICS yields a table");
        assert_eq!(t.schema().len(), 3);
        assert!(
            t.rows().iter().any(|row| row[0] == Value::str("exec.rows.seq_scan")),
            "exec.rows.seq_scan missing from SHOW METRICS"
        );
        // LIKE narrows to one family
        let r = s.execute("SHOW METRICS LIKE 'exec.rows.%'").unwrap();
        let rows = r.rows();
        assert!(!rows.is_empty());
        for row in rows {
            let name = match &row[0] {
                Value::Str(n) => n.clone(),
                other => panic!("metric name should be text, got {other:?}"),
            };
            assert!(name.starts_with("exec.rows."), "LIKE leaked {name}");
        }
        // a pattern matching nothing yields an empty table, not an error
        assert_eq!(s.execute("SHOW METRICS LIKE 'no.such.%'").unwrap().rows().len(), 0);
    }

    #[test]
    fn slow_query_log_records_above_threshold() {
        let mut s = medical_session();
        // impossible threshold: nothing is logged
        s.set_slow_query_threshold(Some(Duration::from_secs(3600)));
        s.execute("SELECT POSSIBLE diagnosis FROM R").unwrap();
        assert_eq!(s.execute("SHOW SLOW QUERIES").unwrap().rows().len(), 0);
        // zero threshold: everything is logged with its phase breakdown
        s.set_slow_query_threshold(Some(Duration::ZERO));
        s.execute("SELECT POSSIBLE diagnosis FROM R").unwrap();
        let r = s.execute("SHOW SLOW QUERIES").unwrap();
        let rows = r.rows();
        assert!(!rows.is_empty());
        assert_eq!(rows[0][0], Value::str("SELECT POSSIBLE diagnosis FROM R"));
        let phases = match &rows[0][2] {
            Value::Str(p) => p.clone(),
            other => panic!("phases should be text, got {other:?}"),
        };
        for phase in ["parse", "optimize", "compile", "execute", "total"] {
            assert!(phases.contains(phase), "{phase} missing from {phases}");
        }
        // None disables the log without clearing past entries
        s.set_slow_query_threshold(None);
        let before = s.slow_log().len();
        s.execute("SELECT POSSIBLE diagnosis FROM R").unwrap();
        assert_eq!(s.slow_log().len(), before);
    }

    #[test]
    fn show_replication_status_on_a_standalone_session() {
        let mut s = medical_session();
        let r = s.execute("SHOW REPLICATION STATUS").unwrap();
        let rows = r.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::str("standalone"));
        assert_eq!(rows[0][3], Value::Int(0), "a standalone session has no lag");
        assert_eq!(rows[0][5], Value::Bool(false), "a standalone session is never stale");
    }

    #[test]
    fn like_match_covers_wildcards() {
        assert!(like_match("wal.%", "wal.appends"));
        assert!(like_match("%appends%", "wal.appends"));
        assert!(like_match("wal.append_", "wal.appends"));
        assert!(like_match("%", ""));
        assert!(like_match("", ""));
        assert!(!like_match("wal.%", "db.checkpoints.full"));
        assert!(!like_match("wal.append_", "wal.append"));
        assert!(!like_match("", "x"));
        assert!(like_match("a%b%c", "a-long-b-tail-c"));
        assert!(!like_match("a%b%c", "a-long-b-tail"));
    }

    #[test]
    fn rollback_restores_repairs_and_ddl() {
        let mut s = Session::new();
        s.execute_script(
            "CREATE TABLE p (ssn INT, name TEXT); \
             INSERT INTO p VALUES ({1: 0.5, 2: 0.5}, 'ann'), (2, 'bob')",
        )
        .unwrap();
        let before = maybms_core::codec::encode_wsd(s.wsd());
        s.execute("BEGIN").unwrap();
        s.execute("REPAIR KEY p(ssn)").unwrap();
        assert_eq!(s.cleaning_log.len(), 1);
        s.execute("ALTER TABLE p RENAME TO q").unwrap();
        s.execute("DROP TABLE q").unwrap();
        s.execute("ROLLBACK").unwrap();
        // byte-identical restore, cleaning log truncated
        assert_eq!(before, maybms_core::codec::encode_wsd(s.wsd()));
        assert!(s.cleaning_log.is_empty());
    }

    #[test]
    fn transaction_guard_rolls_back_on_drop() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        {
            let mut txn = s.transaction().unwrap();
            txn.execute("INSERT INTO t VALUES (1)").unwrap();
            // dropped without commit
        }
        assert!(!s.in_transaction());
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 0);
        {
            let mut txn = s.transaction().unwrap();
            txn.execute("INSERT INTO t VALUES (2)").unwrap();
            txn.commit().unwrap();
        }
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 1);
        // prepared statements work through the guard
        let ins = s.prepare("INSERT INTO t VALUES (?)").unwrap();
        {
            let mut txn = s.transaction().unwrap();
            txn.execute_prepared(&ins, &[Value::Int(9)]).unwrap();
            txn.rollback().unwrap();
        }
        assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 1);
    }

    #[test]
    fn repair_key_via_sql() {
        let mut s = Session::new();
        s.execute("CREATE TABLE p (ssn INT, name TEXT)").unwrap();
        s.execute("INSERT INTO p VALUES ({1: 0.5, 2: 0.5}, 'ann'), (2, 'bob')")
            .unwrap();
        let msg = s.execute("REPAIR KEY p(ssn)").unwrap();
        assert!(matches!(msg, QueryResult::Text(ref t) if t.contains("repaired")));
        // ann's ssn=2 option is gone; her ssn is certainly 1
        let r = s.execute("SELECT CERTAIN ssn, name FROM p").unwrap();
        assert_eq!(r.table().unwrap().len(), 2);
        assert_eq!(s.cleaning_log.len(), 1);
    }

    #[test]
    fn repair_check_via_sql() {
        let mut s = Session::new();
        s.execute("CREATE TABLE r (age INT)").unwrap();
        s.execute("INSERT INTO r VALUES ({10: 0.5, 500: 0.5})").unwrap();
        s.execute("REPAIR CHECK r: age < 150").unwrap();
        let t = s.execute("SELECT CERTAIN age FROM r").unwrap();
        assert_eq!(t.table().unwrap().rows()[0][0], Value::Int(10));
    }

    #[test]
    fn join_via_sql_with_aliases() {
        let mut s = medical_session();
        s.execute("CREATE TABLE cost (tname TEXT, usd INT)").unwrap();
        s.execute("INSERT INTO cost VALUES ('ultrasound', 120), ('TSH', 40), ('BMI', 10)")
            .unwrap();
        let r = s
            .execute(
                "SELECT POSSIBLE r.test, c.usd, PROB() FROM R r, cost c WHERE r.test = c.tname",
            )
            .unwrap();
        let t = r.table().unwrap();
        assert_eq!(t.len(), 3);
        let ultra = t
            .rows()
            .iter()
            .find(|row| row[0] == Value::str("ultrasound"))
            .unwrap();
        assert_eq!(ultra[1], Value::Int(120));
        assert_eq!(ultra[2], Value::Float(0.4));
    }

    #[test]
    fn union_except_via_sql() {
        let mut s = medical_session();
        let r = s
            .execute(
                "SELECT POSSIBLE diagnosis FROM R WHERE diagnosis = 'obesity' \
                 UNION SELECT diagnosis FROM R WHERE diagnosis = 'pregnancy'",
            )
            .unwrap();
        assert_eq!(r.table().unwrap().len(), 2);
        let r2 = s
            .execute(
                "SELECT CERTAIN diagnosis FROM R EXCEPT SELECT diagnosis FROM R WHERE diagnosis = 'obesity'",
            )
            .unwrap();
        assert_eq!(r2.table().unwrap().len(), 0);
    }

    #[test]
    fn explain_shows_both_plans() {
        let mut s = medical_session();
        let r = s
            .execute("EXPLAIN SELECT test FROM R WHERE diagnosis = 'pregnancy'")
            .unwrap();
        let QueryResult::Text(txt) = r else { panic!() };
        assert!(txt.contains("logical plan"));
        assert!(txt.contains("optimized plan"));
        assert!(txt.contains("Scan R"));
    }

    #[test]
    fn explain_shows_physical_plan_with_join_strategy() {
        let mut s = medical_session();
        s.execute("CREATE TABLE cost (tname TEXT, usd INT)").unwrap();
        let r = s
            .execute("EXPLAIN SELECT * FROM R r, cost c WHERE r.test = c.tname")
            .unwrap();
        let QueryResult::Text(txt) = r else { panic!() };
        assert!(txt.contains("physical plan"), "{txt}");
        assert!(
            txt.contains("HashJoin [r.test = c.tname]"),
            "equi-join must pick the hash strategy:\n{txt}"
        );
        assert!(txt.contains("SeqScan R"), "{txt}");

        // a non-equi predicate falls back to the nested loop
        let r2 = s
            .execute("EXPLAIN SELECT * FROM R r, cost c WHERE r.test < c.tname")
            .unwrap();
        let QueryResult::Text(txt2) = r2 else { panic!() };
        assert!(txt2.contains("NestedLoopJoin"), "{txt2}");
    }

    #[test]
    fn rename_table_via_sql() {
        let mut s = Session::new();
        s.execute("CREATE TABLE a (x INT)").unwrap();
        s.execute("INSERT INTO a VALUES (1)").unwrap();
        s.execute("ALTER TABLE a RENAME TO b").unwrap();
        assert_eq!(s.execute("SELECT POSSIBLE x FROM b").unwrap().table().unwrap().len(), 1);
        err_contains(s.execute("SELECT * FROM a"), "unknown relation");
    }

    /// Regression for the PR 1 `rename_relation` fix: renaming onto an
    /// existing name must fail *and leave the source relation intact*
    /// (it used to be dropped).
    #[test]
    fn rename_table_onto_existing_name_keeps_source() {
        let mut s = Session::new();
        s.execute("CREATE TABLE a (x INT)").unwrap();
        s.execute("INSERT INTO a VALUES ({1: 0.5, 2: 0.5})").unwrap();
        s.execute("CREATE TABLE b (y INT)").unwrap();
        err_contains(s.execute("ALTER TABLE a RENAME TO b"), "already exists");
        // the source relation survived the failed rename, data intact
        let r = s.execute("SELECT POSSIBLE x, PROB() FROM a").unwrap();
        assert_eq!(r.table().unwrap().len(), 2);
        // and the target was not clobbered either
        s.execute("SELECT * FROM b").unwrap();
    }

    /// The physical executor must return identical SQL answers at every
    /// worker count (the pool's map is order-preserving + deterministic).
    #[test]
    fn sql_results_identical_across_worker_counts() {
        use std::sync::Arc;
        let setup = "CREATE TABLE cost (tname TEXT, usd INT); \
                     INSERT INTO cost VALUES ('ultrasound', 120), ('TSH', 40), ('BMI', 10)";
        let sql = "SELECT POSSIBLE r.test, c.usd, PROB() FROM R r, cost c \
                   WHERE r.test = c.tname ORDER BY prob DESC";
        let mut reference: Option<Vec<Vec<String>>> = None;
        for workers in [1usize, 2, 4] {
            let mut s = medical_session()
                .with_worker_pool(Arc::new(WorkerPool::new(workers)));
            s.execute_script(setup).unwrap();
            let t = s.execute(sql).unwrap().table().unwrap().clone();
            let rows: Vec<Vec<String>> = t
                .rows()
                .iter()
                .map(|r| r.values().iter().map(|v| v.to_string()).collect())
                .collect();
            match &reference {
                None => reference = Some(rows),
                Some(exp) => assert_eq!(&rows, exp, "workers = {workers}"),
            }
        }
    }

    #[test]
    fn unoptimized_sessions_agree_with_optimized() {
        let sql = "SELECT POSSIBLE r.test, c.usd, PROB() FROM R r, cost c WHERE r.test = c.tname";
        let setup = "CREATE TABLE cost (tname TEXT, usd INT); \
                     INSERT INTO cost VALUES ('ultrasound', 120), ('TSH', 40)";
        let mut s1 = medical_session();
        s1.execute_script(setup).unwrap();
        let mut s2 = medical_session();
        s2.execute_script(setup).unwrap();
        s2.optimize_plans = false;
        let r1 = s1.execute(sql).unwrap();
        let r2 = s2.execute(sql).unwrap();
        assert_eq!(
            r1.table().unwrap().canonical(),
            r2.table().unwrap().canonical()
        );
    }

    #[test]
    fn having_prob_threshold() {
        let mut s = medical_session();
        let r = s
            .execute("SELECT diagnosis, PROB() FROM R HAVING PROB() >= 0.6")
            .unwrap();
        let t = r.table().unwrap();
        // obesity (1.0) and hypothyroidism (0.6) pass; pregnancy (0.4) not
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|row| row[1].as_f64().unwrap() >= 0.6));
        // threshold without PROB() is rejected
        assert!(s.execute("SELECT diagnosis FROM R HAVING PROB() > 0.5").is_err());
        // composes with ORDER BY / LIMIT
        let r = s
            .execute(
                "SELECT diagnosis, PROB() FROM R HAVING PROB() > 0 ORDER BY prob DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(r.table().unwrap().rows()[0][0], Value::str("obesity"));
    }

    #[test]
    fn order_by_and_limit() {
        let mut s = medical_session();
        let r = s
            .execute("SELECT POSSIBLE diagnosis, PROB() FROM R ORDER BY prob DESC LIMIT 2")
            .unwrap();
        let t = r.table().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0], Value::str("obesity")); // p = 1 first
        let p0 = t.rows()[0][1].as_f64().unwrap();
        let p1 = t.rows()[1][1].as_f64().unwrap();
        assert!(p0 >= p1);

        // ORDER BY on a world-set result is rejected
        assert!(s
            .execute("SELECT diagnosis FROM R ORDER BY diagnosis")
            .is_err());
        // unknown sort column errors
        assert!(s
            .execute("SELECT POSSIBLE diagnosis FROM R ORDER BY nope")
            .is_err());
    }

    #[test]
    fn expected_aggregates() {
        let mut s = medical_session();
        // E[|σ diagnosis='pregnancy'|] = 0.4 (r1 in pregnancy worlds only)
        let r = s
            .execute("SELECT EXPECTED COUNT() FROM R WHERE diagnosis = 'pregnancy'")
            .unwrap();
        let v = r.table().unwrap().rows()[0][0].as_f64().unwrap();
        assert!((v - 0.4).abs() < 1e-9);

        // numeric column for ESUM
        s.execute("CREATE TABLE costs (tname TEXT, usd INT)").unwrap();
        s.execute("INSERT INTO costs VALUES ('ultrasound', {100: 0.5, 200: 0.5}), ('TSH', 40)")
            .unwrap();
        let r = s.execute("SELECT EXPECTED SUM(usd) FROM costs").unwrap();
        let v = r.table().unwrap().rows()[0][0].as_f64().unwrap();
        assert!((v - 190.0).abs() < 1e-9, "E[sum] = 0.5*100+0.5*200+40 = {v}");

        // oracle agreement on the count
        let q = maybms_core::algebra::Query::table("R")
            .select(maybms_relational::Expr::col("diagnosis").eq(Expr::lit("pregnancy")));
        let ans = q.eval(s.wsd()).unwrap();
        let brute = ans.to_worldset(100_000).unwrap().expected_count("result");
        assert!((brute - 0.4).abs() < 1e-9);
        use maybms_relational::Expr;
    }

    #[test]
    fn show_tables() {
        let mut s = medical_session();
        let QueryResult::Text(t) = s.execute("SHOW TABLES").unwrap() else { panic!() };
        assert_eq!(t, "R");
    }

    #[test]
    fn errors_surface() {
        let mut s = Session::new();
        err_contains(s.execute("SELECT * FROM missing"), "unknown relation");
        err_contains(s.execute("CREATE TABLE t (a INT"), "expected");
        s.execute("CREATE TABLE t (a INT)").unwrap();
        err_contains(s.execute("CREATE TABLE t (a INT)"), "already exists");
        err_contains(
            s.execute("INSERT INTO t VALUES ('wrong type')"),
            "type error",
        );
    }

    #[test]
    fn session_errors_are_categorized() {
        let mut s = Session::new();
        // parse errors carry the offending SQL
        let e = s.execute("FROB x").unwrap_err();
        assert!(matches!(&e, SessionError::Parse { sql, .. } if sql == "FROB x"), "{e:?}");
        assert!(e.to_string().contains("parse error"));
        // planning errors (unknown relation in a SELECT) are Plan
        let e2 = s.execute("SELECT a FROM missing").unwrap_err();
        assert!(matches!(e2, SessionError::Plan { .. }), "{e2:?}");
        // execution errors are Execute
        s.execute("CREATE TABLE t (a INT)").unwrap();
        let e3 = s.execute("INSERT INTO t VALUES ('x')").unwrap_err();
        assert!(matches!(e3, SessionError::Execute { .. }), "{e3:?}");
        // transaction misuse is Transaction
        let e4 = s.execute("COMMIT").unwrap_err();
        assert!(matches!(e4, SessionError::Transaction { .. }), "{e4:?}");
        // storage misuse is Storage
        let e5 = s.execute("CHECKPOINT").unwrap_err();
        assert!(matches!(e5, SessionError::Storage { .. }), "{e5:?}");
        // the enum is a std::error::Error with a source chain
        let dyn_err: &dyn std::error::Error = &e3;
        assert!(dyn_err.source().is_some());
        assert!(e4.source_error().is_none());
    }

    #[test]
    fn failed_repair_leaves_state_untouched() {
        let mut s = Session::new();
        s.execute("CREATE TABLE r (a INT, b INT)").unwrap();
        // two certain tuples conflicting under the FD, plus an uncertain
        // one the chase would prune first if it ran eagerly
        s.execute("INSERT INTO r VALUES (1, {1: 0.5, 2: 0.5}), (2, 1), (2, 2)")
            .unwrap();
        let before = maybms_core::codec::encode_wsd(s.wsd());
        // (2,1) vs (2,2) violate a -> b in every world: repair must fail …
        assert!(s.execute("REPAIR FD r: a -> b").is_err());
        // … and leave the decomposition byte-identical (no partial chase)
        assert_eq!(before, maybms_core::codec::encode_wsd(s.wsd()));
        assert!(s.cleaning_log.is_empty());
    }

    #[test]
    fn insert_is_atomic() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        // second row is ill-typed: the whole statement must be a no-op
        err_contains(
            s.execute("INSERT INTO t VALUES (1), ('bad')"),
            "type error",
        );
        let r = s.execute("SELECT POSSIBLE a FROM t").unwrap();
        assert_eq!(r.table().unwrap().len(), 0, "failed INSERT left rows behind");
        // arity mismatch in a later row is also atomic
        err_contains(s.execute("INSERT INTO t VALUES (1), (2, 3)"), "arity");
        assert_eq!(
            s.execute("SELECT POSSIBLE a FROM t").unwrap().table().unwrap().len(),
            0
        );
    }

    #[test]
    fn failed_dml_leaves_state_untouched() {
        let mut s = Session::new();
        s.execute("CREATE TABLE r (a INT, b INT)").unwrap();
        s.execute("INSERT INTO r VALUES ({1: 0.5, 2: 0.5}, 0), (3, 0)").unwrap();
        let before = maybms_core::codec::encode_wsd(s.wsd());
        // division by zero in the predicate aborts the statement …
        assert!(s.execute("DELETE FROM r WHERE a / 0 = 1").is_err());
        assert!(s.execute("UPDATE r SET b = 1 WHERE a / 0 = 1").is_err());
        // … without leaking partial edits
        assert_eq!(before, maybms_core::codec::encode_wsd(s.wsd()));
    }

    fn db_path(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir()
            .join(format!("maybms-session-{}-{name}.maybms", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(maybms_storage::wal_path_for(&p));
        p
    }

    fn rm_db(p: &std::path::Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(maybms_storage::wal_path_for(p));
    }

    #[test]
    fn durable_session_survives_reopen_without_checkpoint() {
        let path = db_path("reopen");
        {
            let mut s = Session::open(&path).unwrap();
            assert!(s.is_durable());
            s.execute_script(
                "CREATE TABLE p (ssn INT, name TEXT); \
                 INSERT INTO p VALUES ({1: 0.5, 2: 0.5}, 'ann'), (2, 'bob'); \
                 REPAIR KEY p(ssn)",
            )
            .unwrap();
            // dropped here without CHECKPOINT: recovery must replay the WAL
        }
        let mut s = Session::open(&path).unwrap();
        let r = s.execute("SELECT POSSIBLE ssn, name, PROB() FROM p ORDER BY name").unwrap();
        let t = r.table().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0], Value::Int(1)); // ann's ssn repaired to 1
        assert_eq!(t.rows()[0][2], Value::Float(1.0));
        rm_db(&path);
    }

    #[test]
    fn committed_transaction_is_one_wal_record_and_one_fsync() {
        let path = db_path("txn-group");
        let mut s = Session::open(&path).unwrap();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        let syncs_before = s.wal_sync_count().unwrap();
        let len_before = s.wal_len().unwrap();
        s.execute("BEGIN").unwrap();
        for i in 0..20 {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        // nothing reaches the log until COMMIT …
        assert_eq!(s.wal_len().unwrap(), len_before, "buffered, not appended");
        assert_eq!(s.wal_sync_count().unwrap(), syncs_before);
        s.execute("COMMIT").unwrap();
        // … and the whole transaction costs exactly one fsync
        assert_eq!(
            s.wal_sync_count().unwrap(),
            syncs_before + 1,
            "a transaction of N inserts must fsync exactly once"
        );
        assert!(s.wal_len().unwrap() > len_before);
        drop(s);
        let mut back = Session::open(&path).unwrap();
        assert_eq!(back.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 20);
        rm_db(&path);
    }

    #[test]
    fn uncommitted_transaction_is_not_recovered() {
        let path = db_path("txn-kill");
        {
            let mut s = Session::open(&path).unwrap();
            s.execute("CREATE TABLE t (x INT)").unwrap();
            s.execute("INSERT INTO t VALUES (1)").unwrap();
            s.execute("BEGIN").unwrap();
            s.execute("INSERT INTO t VALUES (2)").unwrap();
            s.execute("DELETE FROM t WHERE x = 1").unwrap();
            // killed mid-transaction: nothing after BEGIN was committed
        }
        let mut s = Session::open(&path).unwrap();
        let rows = s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().to_vec();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(1), "recovery rolls back the open transaction");
        rm_db(&path);
    }

    #[test]
    fn empty_and_readonly_transactions_append_nothing() {
        let path = db_path("txn-empty");
        let mut s = Session::open(&path).unwrap();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        let len = s.wal_len().unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("SELECT POSSIBLE x FROM t").unwrap();
        s.execute("COMMIT").unwrap();
        assert_eq!(s.wal_len().unwrap(), len, "read-only transaction logs nothing");
        rm_db(&path);
    }

    #[test]
    fn checkpoint_compacts_the_wal() {
        let path = db_path("ckpt");
        let mut s = Session::open(&path).unwrap();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        s.execute("INSERT INTO t VALUES ({1: 0.9, 2: 0.1})").unwrap();
        let wal_before = s.wal_len().unwrap();
        assert!(wal_before > maybms_storage::WAL_HEADER_LEN);
        let r = s.execute("CHECKPOINT").unwrap();
        assert!(matches!(r, QueryResult::Text(ref t) if t.contains("checkpointed")));
        assert_eq!(s.wal_len().unwrap(), maybms_storage::WAL_HEADER_LEN);
        assert_eq!(s.storage_generation(), Some(1));
        // statements after the checkpoint land in the fresh WAL …
        s.execute("INSERT INTO t VALUES (7)").unwrap();
        drop(s);
        // … and reopening sees snapshot + tail
        let mut s2 = Session::open(&path).unwrap();
        assert_eq!(
            s2.execute("SELECT POSSIBLE x FROM t").unwrap().table().unwrap().len(),
            3
        );
        rm_db(&path);
    }

    #[test]
    fn checkpoint_requires_a_database_file() {
        let mut s = Session::new();
        err_contains(s.execute("CHECKPOINT"), "requires a session opened");
    }

    #[test]
    fn attach_makes_a_session_durable_and_refuses_clobbering() {
        let path = db_path("attach");
        let mut s = medical_session();
        s.attach(&path).unwrap();
        assert!(s.is_durable());
        assert_eq!(s.storage_generation(), Some(1), "attach checkpoints immediately");
        s.execute("CREATE TABLE t (x INT)").unwrap();
        drop(s);
        // reopen: medical data + the new table are both there
        let mut s2 = Session::open(&path).unwrap();
        let r = s2.execute("SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy'").unwrap();
        assert_eq!(r.table().unwrap().rows()[0][1], Value::Float(0.4));
        // attaching another session onto the same files is refused
        let mut s3 = Session::new();
        let e = s3.attach(&path).unwrap_err();
        assert!(e.to_string().contains("already holds a database"), "{e}");
        // and double-attach is refused
        let e2 = s2.attach(db_path("attach-other")).unwrap_err();
        assert!(e2.to_string().contains("already attached"), "{e2}");
        // attach inside a transaction is refused
        let mut s4 = Session::new();
        s4.execute("BEGIN").unwrap();
        let e3 = s4.attach(db_path("attach-txn")).unwrap_err();
        assert!(matches!(e3, SessionError::Transaction { .. }), "{e3:?}");
        rm_db(&path);
        rm_db(&db_path("attach-other"));
        rm_db(&db_path("attach-txn"));
    }

    #[test]
    fn clones_are_detached() {
        let path = db_path("clone");
        let mut s = Session::open(&path).unwrap();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        let mut c = s.clone();
        assert!(!c.is_durable());
        // the clone keeps the state but mutations no longer hit the WAL
        c.execute("INSERT INTO t VALUES (1)").unwrap();
        drop(s);
        drop(c);
        let mut back = Session::open(&path).unwrap();
        assert_eq!(
            back.execute("SELECT POSSIBLE x FROM t").unwrap().table().unwrap().len(),
            0,
            "clone's insert must not reach the log"
        );
        rm_db(&path);
    }

    /// Regression for the clone-mid-transaction footgun: the clone must
    /// carry the buffered-but-uncommitted state (not silently drop it), so
    /// rollback on the clone restores the pre-BEGIN snapshot, and the
    /// original session's transaction is unaffected by the clone.
    #[test]
    fn clone_mid_transaction_carries_buffered_state() {
        let path = db_path("clone-txn");
        let mut s = Session::open(&path).unwrap();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();

        let mut c = s.clone();
        assert!(c.in_transaction(), "clone must carry the open transaction");
        assert!(!c.is_durable());
        // the clone can keep going and roll back to the pre-BEGIN state
        c.execute("INSERT INTO t VALUES (2)").unwrap();
        assert_eq!(c.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 2);
        c.execute("ROLLBACK").unwrap();
        assert_eq!(c.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 0);

        // the original's transaction is independent: commit lands on disk
        s.execute("COMMIT").unwrap();
        drop(s);
        drop(c);
        let mut back = Session::open(&path).unwrap();
        let rows = back.execute("SELECT POSSIBLE x FROM t").unwrap().rows().to_vec();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(1));
        rm_db(&path);
    }
}
