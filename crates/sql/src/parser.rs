//! Recursive-descent parser for the MayBMS SQL dialect.

use maybms_relational::{ColumnType, Error, Expr, Result, Value};

use crate::ast::*;
use crate::lexer::{lex, Sym, Token};

/// Parses one statement (an optional trailing `;` is accepted).
pub fn parse(input: &str) -> Result<Statement> {
    Ok(parse_counting_params(input)?.0)
}

/// Parses one statement, additionally returning how many distinct `?`
/// parameter slots it references — the prepared-statement entry point.
pub fn parse_counting_params(input: &str) -> Result<(Statement, u32)> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Sym::Semicolon);
    if !p.at_end() {
        return Err(Error::InvalidExpr(format!(
            "unexpected trailing input at token {:?}",
            p.peek()
        )));
    }
    Ok((stmt, p.params))
}

/// Parses a `;`-separated script.
pub fn parse_script(input: &str) -> Result<Vec<Statement>> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.statement()?);
        if !p.eat_symbol(Sym::Semicolon) {
            break;
        }
    }
    if !p.at_end() {
        return Err(Error::InvalidExpr(format!(
            "unexpected trailing input at token {:?}",
            p.peek()
        )));
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// `?` placeholders seen so far; each occurrence takes the next
    /// 0-based slot in order of appearance.
    params: u32,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::InvalidExpr(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(Error::InvalidExpr(format!("expected '{s}', found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            t => Err(Error::InvalidExpr(format!("expected identifier, found {t:?}"))),
        }
    }

    /// Identifier possibly qualified by a dot: `a` or `a.b`.
    fn qualified_ident(&mut self) -> Result<String> {
        let mut s = self.ident()?;
        while self.eat_symbol(Sym::Dot) {
            s.push('.');
            s.push_str(&self.ident()?);
        }
        Ok(s)
    }

    // -------------------------------------------------------------
    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(Token::Keyword(k)) => match k.as_str() {
                "SELECT" => Ok(Statement::Select(self.select_stmt()?)),
                "CREATE" => self.create_table(),
                "DROP" => self.drop_table(),
                "ALTER" => self.alter_table(),
                "INSERT" => self.insert(),
                "DELETE" => self.delete(),
                "UPDATE" => self.update(),
                "REPAIR" => self.repair(),
                "EXPLAIN" => {
                    self.next();
                    let analyze = self.eat_keyword("ANALYZE");
                    Ok(Statement::Explain { stmt: Box::new(self.statement()?), analyze })
                }
                "SHOW" => {
                    self.next();
                    if self.eat_keyword("TABLES") {
                        Ok(Statement::ShowTables)
                    } else if self.eat_keyword("METRICS") {
                        let like = if self.eat_keyword("LIKE") {
                            match self.next() {
                                Some(Token::Str(p)) => Some(p),
                                t => {
                                    return Err(Error::InvalidExpr(format!(
                                        "expected a string pattern after LIKE, found {t:?}"
                                    )))
                                }
                            }
                        } else {
                            None
                        };
                        Ok(Statement::ShowMetrics { like })
                    } else if self.eat_keyword("SLOW") {
                        self.expect_keyword("QUERIES")?;
                        Ok(Statement::ShowSlowQueries)
                    } else if self.eat_keyword("REPLICATION") {
                        self.expect_keyword("STATUS")?;
                        Ok(Statement::ShowReplicationStatus)
                    } else {
                        Err(Error::InvalidExpr(format!(
                            "expected TABLES, METRICS, SLOW QUERIES or REPLICATION STATUS \
                             after SHOW, found {:?}",
                            self.peek()
                        )))
                    }
                }
                "CHECKPOINT" => {
                    self.next();
                    let full = self.eat_keyword("FULL");
                    Ok(Statement::Checkpoint { full })
                }
                "BEGIN" => {
                    self.next();
                    // `BEGIN TRANSACTION` / `BEGIN WORK` are accepted
                    let _ = self.eat_keyword("TRANSACTION") || self.eat_keyword("WORK");
                    Ok(Statement::Begin)
                }
                "COMMIT" => {
                    self.next();
                    let _ = self.eat_keyword("TRANSACTION") || self.eat_keyword("WORK");
                    Ok(Statement::Commit)
                }
                "ROLLBACK" => {
                    self.next();
                    if self.eat_keyword("TO") {
                        let _ = self.eat_keyword("SAVEPOINT");
                        return Ok(Statement::RollbackTo { name: self.ident()? });
                    }
                    let _ = self.eat_keyword("TRANSACTION") || self.eat_keyword("WORK");
                    Ok(Statement::Rollback)
                }
                "SAVEPOINT" => {
                    self.next();
                    Ok(Statement::Savepoint { name: self.ident()? })
                }
                other => Err(Error::InvalidExpr(format!("unexpected keyword {other}"))),
            },
            t => Err(Error::InvalidExpr(format!("expected a statement, found {t:?}"))),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let mode = if self.eat_keyword("POSSIBLE") {
            WorldMode::Possible
        } else if self.eat_keyword("CERTAIN") {
            WorldMode::Certain
        } else {
            WorldMode::AllWorlds
        };
        let distinct = self.eat_keyword("DISTINCT");

        let mut prob = false;
        let mut expected = None;
        let mut items = Vec::new();
        loop {
            if self.eat_keyword("PROB") || self.eat_keyword("CONF") {
                self.expect_symbol(Sym::LParen)?;
                self.expect_symbol(Sym::RParen)?;
                prob = true;
            } else if self.eat_keyword("EXPECTED") {
                if self.eat_keyword("COUNT") {
                    self.expect_symbol(Sym::LParen)?;
                    self.expect_symbol(Sym::RParen)?;
                    expected = Some(crate::ast::ExpectedAgg::Count);
                } else if self.eat_keyword("SUM") {
                    self.expect_symbol(Sym::LParen)?;
                    let col = self.qualified_ident()?;
                    self.expect_symbol(Sym::RParen)?;
                    expected = Some(crate::ast::ExpectedAgg::Sum(col));
                } else {
                    return Err(Error::InvalidExpr(
                        "expected COUNT or SUM after EXPECTED".into(),
                    ));
                }
            } else if self.eat_symbol(Sym::Star) {
                items.push(SelectItem::Star);
            } else {
                items.push(SelectItem::Column(self.qualified_ident()?));
            }
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }

        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let name = self.ident()?;
            let alias = if self.eat_keyword("AS") {
                Some(self.ident()?)
            } else if let Some(Token::Ident(_)) = self.peek() {
                Some(self.ident()?)
            } else {
                None
            };
            from.push(TableRef { name, alias });
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let set_op = if self.eat_keyword("UNION") {
            Some((SetOp::Union, Box::new(self.select_stmt()?)))
        } else if self.eat_keyword("EXCEPT") {
            Some((SetOp::Except, Box::new(self.select_stmt()?)))
        } else {
            None
        };

        let prob_threshold = if self.eat_keyword("HAVING") {
            self.expect_keyword("PROB")
                .or_else(|_| self.expect_keyword("CONF"))?;
            self.expect_symbol(Sym::LParen)?;
            self.expect_symbol(Sym::RParen)?;
            let op = match self.next() {
                Some(Token::Symbol(Sym::Gt)) => maybms_relational::CmpOp::Gt,
                Some(Token::Symbol(Sym::Ge)) => maybms_relational::CmpOp::Ge,
                Some(Token::Symbol(Sym::Lt)) => maybms_relational::CmpOp::Lt,
                Some(Token::Symbol(Sym::Le)) => maybms_relational::CmpOp::Le,
                Some(Token::Symbol(Sym::Eq)) => maybms_relational::CmpOp::Eq,
                t => {
                    return Err(Error::InvalidExpr(format!(
                        "expected comparison after HAVING PROB(), found {t:?}"
                    )))
                }
            };
            Some((op, self.number()?))
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                // allow keyword-named output columns (e.g. the `prob`
                // column produced by PROB()) as sort keys
                let col = match self.peek() {
                    Some(Token::Keyword(k)) => {
                        let name = k.to_ascii_lowercase();
                        self.next();
                        name
                    }
                    _ => self.qualified_ident()?,
                };
                // ASC/DESC are not reserved keywords; accept them as idents
                let asc = match self.peek() {
                    Some(Token::Ident(d)) if d.eq_ignore_ascii_case("desc") => {
                        self.next();
                        false
                    }
                    Some(Token::Ident(d)) if d.eq_ignore_ascii_case("asc") => {
                        self.next();
                        true
                    }
                    _ => true,
                };
                order_by.push((col, asc));
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                t => return Err(Error::InvalidExpr(format!("expected LIMIT count, found {t:?}"))),
            }
        } else {
            None
        };

        Ok(SelectStmt {
            mode,
            distinct,
            prob,
            expected,
            items,
            from,
            where_clause,
            set_op,
            prob_threshold,
            order_by,
            limit,
        })
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = match self.next() {
                Some(Token::Keyword(k)) => match k.as_str() {
                    "INT" => ColumnType::Int,
                    "TEXT" => ColumnType::Str,
                    "FLOAT" => ColumnType::Float,
                    "BOOL" => ColumnType::Bool,
                    other => {
                        return Err(Error::InvalidExpr(format!("unknown column type {other}")))
                    }
                },
                t => return Err(Error::InvalidExpr(format!("expected a type, found {t:?}"))),
            };
            columns.push((col, ty));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        Ok(Statement::DropTable { name: self.ident()? })
    }

    fn alter_table(&mut self) -> Result<Statement> {
        self.expect_keyword("ALTER")?;
        self.expect_keyword("TABLE")?;
        let from = self.ident()?;
        self.expect_keyword("RENAME")?;
        self.expect_keyword("TO")?;
        let to = self.ident()?;
        Ok(Statement::RenameTable { from, to })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.insert_value()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let pred = if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, pred })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_keyword("UPDATE")?;
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut set = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Sym::Eq)?;
            // assigned values are certain scalars or `?` parameters —
            // or-set literals would introduce fresh uncertainty, which
            // INSERT covers
            let v = if self.eat_symbol(Sym::Question) {
                let i = self.params;
                self.params += 1;
                InsertValue::Param(i)
            } else {
                InsertValue::Certain(self.value_literal()?)
            };
            set.push((col, v));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let pred = if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, set, pred })
    }

    fn insert_value(&mut self) -> Result<InsertValue> {
        if self.eat_symbol(Sym::Question) {
            let i = self.params;
            self.params += 1;
            return Ok(InsertValue::Param(i));
        }
        if self.eat_symbol(Sym::LBrace) {
            // or-set literal
            let mut vals: Vec<(Value, Option<f64>)> = Vec::new();
            loop {
                let v = self.value_literal()?;
                let p = if self.eat_symbol(Sym::Colon) {
                    Some(self.number()?)
                } else {
                    None
                };
                vals.push((v, p));
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RBrace)?;
            let weighted = vals.iter().any(|(_, p)| p.is_some());
            if weighted {
                if vals.iter().any(|(_, p)| p.is_none()) {
                    return Err(Error::InvalidExpr(
                        "or-set literal mixes weighted and unweighted alternatives".into(),
                    ));
                }
                Ok(InsertValue::Weighted(
                    vals.into_iter().map(|(v, p)| (v, p.expect("checked"))).collect(), // maybms-lint: allow(no-panic-in-prod) -- the all-probabilities-present case was checked just above this branch
                ))
            } else {
                Ok(InsertValue::Uniform(vals.into_iter().map(|(v, _)| v).collect()))
            }
        } else {
            Ok(InsertValue::Certain(self.value_literal()?))
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next() {
            Some(Token::Int(i)) => Ok(i as f64),
            Some(Token::Float(f)) => Ok(f),
            t => Err(Error::InvalidExpr(format!("expected a number, found {t:?}"))),
        }
    }

    fn value_literal(&mut self) -> Result<Value> {
        let neg = self.eat_symbol(Sym::Minus);
        let v = match self.next() {
            Some(Token::Int(i)) => Value::Int(i),
            Some(Token::Float(f)) => Value::Float(f),
            Some(Token::Str(s)) => Value::str(s),
            Some(Token::Keyword(k)) => match k.as_str() {
                "TRUE" => Value::Bool(true),
                "FALSE" => Value::Bool(false),
                "NULL" => Value::Null,
                other => return Err(Error::InvalidExpr(format!("unexpected keyword {other}"))),
            },
            t => return Err(Error::InvalidExpr(format!("expected a literal, found {t:?}"))),
        };
        if neg {
            match v {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(Error::InvalidExpr(format!("cannot negate {other}"))),
            }
        } else {
            Ok(v)
        }
    }

    fn repair(&mut self) -> Result<Statement> {
        self.expect_keyword("REPAIR")?;
        if self.eat_keyword("KEY") {
            let table = self.ident()?;
            self.expect_symbol(Sym::LParen)?;
            let mut columns = vec![self.ident()?];
            while self.eat_symbol(Sym::Comma) {
                columns.push(self.ident()?);
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Statement::Repair(RepairStmt::Key { table, columns }));
        }
        if self.eat_keyword("FD") {
            let table = self.ident()?;
            self.expect_symbol(Sym::Colon)?;
            let mut lhs = vec![self.ident()?];
            while self.eat_symbol(Sym::Comma) {
                lhs.push(self.ident()?);
            }
            self.expect_symbol(Sym::Arrow)?;
            let mut rhs = vec![self.ident()?];
            while self.eat_symbol(Sym::Comma) {
                rhs.push(self.ident()?);
            }
            return Ok(Statement::Repair(RepairStmt::Fd { table, lhs, rhs }));
        }
        if self.eat_keyword("CHECK") {
            let table = self.ident()?;
            self.expect_symbol(Sym::Colon)?;
            let pred = self.expr()?;
            return Ok(Statement::Repair(RepairStmt::Check { table, pred }));
        }
        Err(Error::InvalidExpr(
            "expected KEY, FD or CHECK after REPAIR".into(),
        ))
    }

    // -------------------------------------------------------------
    // expressions (precedence: OR < AND < NOT < cmp < add < mul < atom)
    // -------------------------------------------------------------
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_keyword("OR") {
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_keyword("AND") {
            e = e.and(self.not_expr()?);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            Ok(self.not_expr()?.not())
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            let e = left.is_null();
            return Ok(if negated { e.not() } else { e });
        }
        // [NOT] IN (v1, v2, ...)
        let negated_in = if self.eat_keyword("NOT") {
            self.expect_keyword("IN")?;
            true
        } else if self.eat_keyword("IN") {
            false
        } else {
            // plain comparison
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Eq)) => Some(maybms_relational::CmpOp::Eq),
                Some(Token::Symbol(Sym::Ne)) => Some(maybms_relational::CmpOp::Ne),
                Some(Token::Symbol(Sym::Lt)) => Some(maybms_relational::CmpOp::Lt),
                Some(Token::Symbol(Sym::Le)) => Some(maybms_relational::CmpOp::Le),
                Some(Token::Symbol(Sym::Gt)) => Some(maybms_relational::CmpOp::Gt),
                Some(Token::Symbol(Sym::Ge)) => Some(maybms_relational::CmpOp::Ge),
                _ => None,
            };
            return match op {
                Some(op) => {
                    self.next();
                    let right = self.add_expr()?;
                    Ok(Expr::Cmp(op, Box::new(left), Box::new(right)))
                }
                None => Ok(left),
            };
        };
        self.expect_symbol(Sym::LParen)?;
        let mut vals = vec![self.value_literal()?];
        while self.eat_symbol(Sym::Comma) {
            vals.push(self.value_literal()?);
        }
        self.expect_symbol(Sym::RParen)?;
        let e = left.in_list(vals);
        Ok(if negated_in { e.not() } else { e })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => maybms_relational::BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => maybms_relational::BinOp::Sub,
                _ => break,
            };
            self.next();
            e = Expr::Bin(op, Box::new(e), Box::new(self.mul_expr()?));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => maybms_relational::BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => maybms_relational::BinOp::Div,
                Some(Token::Symbol(Sym::Percent)) => maybms_relational::BinOp::Mod,
                _ => break,
            };
            self.next();
            e = Expr::Bin(op, Box::new(e), Box::new(self.atom()?));
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Token::Symbol(Sym::LParen)) => {
                self.next();
                let e = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Symbol(Sym::Question)) => {
                self.next();
                let i = self.params;
                self.params += 1;
                Ok(Expr::Param(i))
            }
            Some(Token::Ident(_)) => Ok(Expr::Col(self.qualified_ident()?)),
            _ => Ok(Expr::Lit(self.value_literal()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query() {
        let s = parse("select Test from R where Diagnosis = 'pregnancy'").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.mode, WorldMode::AllWorlds);
        assert_eq!(sel.items, vec![SelectItem::Column("Test".into())]);
        assert_eq!(sel.from[0].name, "R");
        assert_eq!(
            sel.where_clause.unwrap().to_string(),
            "(Diagnosis = 'pregnancy')"
        );
    }

    #[test]
    fn parses_prob_and_modes() {
        let s = parse("SELECT PROB() FROM R WHERE test = 'ultrasound';").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.prob);
        assert!(sel.items.is_empty());

        let s2 = parse("SELECT POSSIBLE * FROM R").unwrap();
        let Statement::Select(sel2) = s2 else { panic!() };
        assert_eq!(sel2.mode, WorldMode::Possible);
        assert_eq!(sel2.items, vec![SelectItem::Star]);

        let s3 = parse("SELECT CERTAIN diagnosis FROM R").unwrap();
        let Statement::Select(sel3) = s3 else { panic!() };
        assert_eq!(sel3.mode, WorldMode::Certain);
    }

    #[test]
    fn parses_joins_with_aliases() {
        let s = parse("SELECT a.x, b.y FROM r AS a, r b WHERE a.x = b.y AND a.x > 3").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.from[0].alias.as_deref(), Some("a"));
        assert_eq!(sel.from[1].alias.as_deref(), Some("b"));
    }

    #[test]
    fn parses_union_except() {
        let s = parse("SELECT a FROM r UNION SELECT a FROM s").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.set_op.as_ref().unwrap().0, SetOp::Union);
        let s2 = parse("SELECT a FROM r EXCEPT SELECT a FROM s").unwrap();
        let Statement::Select(sel2) = s2 else { panic!() };
        assert_eq!(sel2.set_op.as_ref().unwrap().0, SetOp::Except);
    }

    #[test]
    fn parses_ddl_and_insert_with_orsets() {
        let s = parse("CREATE TABLE r (a INT, b TEXT, c FLOAT, d BOOL)").unwrap();
        assert!(matches!(s, Statement::CreateTable { ref columns, .. } if columns.len() == 4));

        let s2 = parse("INSERT INTO r VALUES (1, {'x', 'y'}, {1.5: 0.3, 2.5: 0.7}, TRUE)").unwrap();
        let Statement::Insert { rows, .. } = s2 else { panic!() };
        assert_eq!(rows.len(), 1);
        assert!(matches!(rows[0][1], InsertValue::Uniform(ref v) if v.len() == 2));
        assert!(matches!(rows[0][2], InsertValue::Weighted(ref v) if v.len() == 2));
        assert_eq!(rows[0][3], InsertValue::Certain(Value::Bool(true)));
    }

    #[test]
    fn parses_repairs() {
        let s = parse("REPAIR KEY person(ssn)").unwrap();
        assert!(matches!(
            s,
            Statement::Repair(RepairStmt::Key { ref columns, .. }) if columns == &["ssn"]
        ));
        let s2 = parse("REPAIR FD person: zip -> city, state").unwrap();
        assert!(matches!(
            s2,
            Statement::Repair(RepairStmt::Fd { ref lhs, ref rhs, .. })
                if lhs == &["zip"] && rhs.len() == 2
        ));
        let s3 = parse("REPAIR CHECK person: age < 150 AND age >= 0").unwrap();
        assert!(matches!(s3, Statement::Repair(RepairStmt::Check { .. })));
    }

    #[test]
    fn parses_alter_table_rename() {
        let s = parse("ALTER TABLE a RENAME TO b").unwrap();
        assert_eq!(
            s,
            Statement::RenameTable { from: "a".into(), to: "b".into() }
        );
        assert!(parse("ALTER TABLE a RENAME b").is_err());
        assert!(parse("ALTER a RENAME TO b").is_err());
    }

    #[test]
    fn parses_explain_and_show() {
        assert!(matches!(
            parse("EXPLAIN SELECT a FROM r").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
        assert!(matches!(
            parse("EXPLAIN ANALYZE SELECT a FROM r").unwrap(),
            Statement::Explain { analyze: true, .. }
        ));
        assert!(matches!(parse("SHOW TABLES").unwrap(), Statement::ShowTables));
    }

    #[test]
    fn parses_observability_show_statements() {
        assert_eq!(
            parse("SHOW METRICS").unwrap(),
            Statement::ShowMetrics { like: None }
        );
        assert_eq!(
            parse("SHOW METRICS LIKE 'wal.%'").unwrap(),
            Statement::ShowMetrics { like: Some("wal.%".into()) }
        );
        assert_eq!(parse("SHOW SLOW QUERIES").unwrap(), Statement::ShowSlowQueries);
        assert_eq!(
            parse("show replication status").unwrap(),
            Statement::ShowReplicationStatus
        );
        // malformed variants fail loudly
        assert!(parse("SHOW METRICS LIKE 42").is_err());
        assert!(parse("SHOW SLOW").is_err());
        assert!(parse("SHOW REPLICATION").is_err());
        assert!(parse("SHOW nonsense").is_err());
    }

    #[test]
    fn parses_savepoints() {
        assert_eq!(
            parse("SAVEPOINT sp1").unwrap(),
            Statement::Savepoint { name: "sp1".into() }
        );
        assert_eq!(
            parse("ROLLBACK TO sp1").unwrap(),
            Statement::RollbackTo { name: "sp1".into() }
        );
        assert_eq!(
            parse("ROLLBACK TO SAVEPOINT sp1").unwrap(),
            Statement::RollbackTo { name: "sp1".into() }
        );
        assert!(parse("SAVEPOINT").is_err());
        assert!(parse("ROLLBACK TO").is_err());
    }

    #[test]
    fn parses_transaction_control() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("begin transaction;").unwrap(), Statement::Begin);
        assert_eq!(parse("BEGIN WORK").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK work").unwrap(), Statement::Rollback);
        assert!(parse("BEGIN now").is_err());
        let script = parse_script("BEGIN; INSERT INTO r VALUES (1); COMMIT;").unwrap();
        assert_eq!(script.len(), 3);
    }

    #[test]
    fn parses_delete() {
        let s = parse("DELETE FROM r WHERE a = 1 AND b > 2").unwrap();
        let Statement::Delete { table, pred } = s else { panic!() };
        assert_eq!(table, "r");
        assert_eq!(pred.unwrap().to_string(), "((a = 1) AND (b > 2))");
        let s2 = parse("DELETE FROM r").unwrap();
        assert!(matches!(s2, Statement::Delete { pred: None, .. }));
        assert!(parse("DELETE r").is_err());
    }

    #[test]
    fn parses_update() {
        let s = parse("UPDATE r SET a = 5, b = 'x' WHERE a < 3").unwrap();
        let Statement::Update { table, set, pred } = s else { panic!() };
        assert_eq!(table, "r");
        assert_eq!(set.len(), 2);
        assert_eq!(set[0], ("a".into(), InsertValue::Certain(Value::Int(5))));
        assert_eq!(set[1], ("b".into(), InsertValue::Certain(Value::str("x"))));
        assert!(pred.is_some());
        let s2 = parse("UPDATE r SET a = -1").unwrap();
        assert!(matches!(s2, Statement::Update { pred: None, .. }));
        assert!(parse("UPDATE r a = 1").is_err());
        assert!(parse("UPDATE r SET a = {1, 2}").is_err());
    }

    #[test]
    fn parses_placeholders_in_order() {
        let (s, n) = parse_counting_params("INSERT INTO r VALUES (?, 2), (3, ?)").unwrap();
        assert_eq!(n, 2);
        let Statement::Insert { rows, .. } = s else { panic!() };
        assert_eq!(rows[0][0], InsertValue::Param(0));
        assert_eq!(rows[1][1], InsertValue::Param(1));

        let (s2, n2) =
            parse_counting_params("UPDATE r SET a = ?, b = ? WHERE a = ? OR b < ?").unwrap();
        assert_eq!(n2, 4);
        let Statement::Update { set, pred, .. } = s2 else { panic!() };
        assert_eq!(set[0].1, InsertValue::Param(0));
        assert_eq!(set[1].1, InsertValue::Param(1));
        assert_eq!(pred.unwrap().param_count(), 4);

        let (s3, n3) = parse_counting_params("DELETE FROM r WHERE a = ?").unwrap();
        assert_eq!(n3, 1);
        let Statement::Delete { pred, .. } = s3 else { panic!() };
        assert_eq!(pred.unwrap().to_string(), "(a = ?1)");

        let (_, n4) = parse_counting_params("SELECT POSSIBLE a FROM r WHERE b = ?").unwrap();
        assert_eq!(n4, 1);
    }

    #[test]
    fn parses_checkpoint() {
        assert!(matches!(parse("CHECKPOINT").unwrap(), Statement::Checkpoint { full: false }));
        assert!(matches!(parse("checkpoint;").unwrap(), Statement::Checkpoint { full: false }));
        assert!(matches!(parse("CHECKPOINT FULL").unwrap(), Statement::Checkpoint { full: true }));
        assert!(parse("CHECKPOINT now").is_err());
    }

    #[test]
    fn expression_precedence() {
        let s = parse("SELECT a FROM r WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        // AND binds tighter: a=1 OR (b=2 AND c=3)
        assert_eq!(
            sel.where_clause.unwrap().to_string(),
            "((a = 1) OR ((b = 2) AND (c = 3)))"
        );
    }

    #[test]
    fn parses_in_and_is_null() {
        let s = parse("SELECT a FROM r WHERE b IN ('x','y') AND c IS NOT NULL AND a NOT IN (1)")
            .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let txt = sel.where_clause.unwrap().to_string();
        assert!(txt.contains("IN"));
        assert!(txt.contains("IS NULL"));
    }

    #[test]
    fn parse_script_splits_statements() {
        let stmts =
            parse_script("CREATE TABLE r (a INT); INSERT INTO r VALUES (1); SELECT a FROM r;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("FROB x").is_err());
        assert!(parse("SELECT a FROM r WHERE").is_err());
        assert!(parse("INSERT INTO r VALUES (1, {2: 0.5, 3})").is_err());
        assert!(parse("SELECT a FROM r extra garbage").is_err());
    }

    #[test]
    fn negative_literals() {
        let s = parse("INSERT INTO r VALUES (-5, -1.5)").unwrap();
        let Statement::Insert { rows, .. } = s else { panic!() };
        assert_eq!(rows[0][0], InsertValue::Certain(Value::Int(-5)));
        assert_eq!(rows[0][1], InsertValue::Certain(Value::Float(-1.5)));
    }
}
