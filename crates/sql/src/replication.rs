//! WAL-shipping replication: one read-write **primary**, any number of
//! read-only **replicas** (followers).
//!
//! The design leans on two properties earlier PRs established:
//!
//! * the write-ahead log ships **whole transactions** — a record is one
//!   autocommitted statement or one commit group, so applying records in
//!   order can never expose half a transaction;
//! * the engine is **deterministic** — replaying the same statements
//!   produces a byte-identical decomposition (under `maybms_core::codec`),
//!   so a follower that has applied the primary's log prefix up to LSN *x*
//!   holds *provably the same state* the primary had at LSN *x*.
//!
//! # Protocol
//!
//! A follower connects over any ordered byte stream (in-process pipe,
//! unix socket, TCP — the protocol is `maybms_storage::ship`) and sends
//! `Hello { generation, last_lsn }`. The primary compares that position
//! with its WAL:
//!
//! * position within the log → stream `Record { lsn, … }` messages from
//!   there, then keep tailing the log (only **fsynced** records are ever
//!   shipped — a replica can never get ahead of the primary's durable
//!   state);
//! * position before the log's `base_lsn` (a checkpoint compacted the
//!   records away) or past its end (a foreign timeline) → send one
//!   `Snapshot` message with the full effective state (base + overlay),
//!   which the follower swaps in wholesale, then stream records.
//!
//! A connection cut mid-frame (torn stream) is detected by the message
//! CRCs; the follower simply reconnects with a fresh `Hello` naming its
//! applied LSN and the primary resumes from there. Applying is
//! idempotent-by-LSN, so overlap across reconnects is harmless; a **gap**
//! (a record skipping past `applied_lsn + 1`) is refused loudly.
//! [`follow_with_retry`] packages the reconnect loop: capped exponential
//! [`Backoff`] with jitter between attempts, resumption by LSN, and a
//! stop flag. On the other side, the primary heartbeats while idle
//! (time-based, see [`Primary::with_heartbeat_interval`]) so a follower
//! can bound how stale it might be ([`Replica::is_stale`]) and tails the
//! log event-driven: the session's commits signal the WAL's
//! notify-on-commit handle, with exponential-backoff polling only as the
//! fallback cadence for appends the signal cannot cover.
//!
//! # Read-only replicas
//!
//! A [`Replica`]'s session answers queries but refuses every mutation,
//! transaction-control statement and `CHECKPOINT` with
//! [`SessionError::ReadOnlyReplica`] — shipped records are applied
//! through an internal path (they were committed on the primary; applying
//! them here is replay, not a new write).
//!
//! ```no_run
//! use maybms_sql::{Session, replication::{Primary, Replica}};
//! use std::os::unix::net::UnixStream;
//!
//! // the primary serves its durable database to followers
//! let mut session = Session::open("db.maybms").unwrap();
//! let primary = Primary::new("db.maybms");
//! let (to_primary, from_replica) = UnixStream::pair().unwrap();
//! let server = primary.spawn_serve(from_replica);
//!
//! // a follower syncs and answers queries
//! session.execute("CREATE TABLE t (x INT)").unwrap();
//! let mut replica = Replica::new();
//! let mut conn = replica.connect(to_primary).unwrap();
//! replica.sync_to(&mut conn, session.last_lsn().unwrap()).unwrap();
//! replica.query("SELECT POSSIBLE x FROM t").unwrap();
//! primary.stop();
//! # drop(server);
//! ```

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use maybms_obs::Counter;

use maybms_core::codec::{decode_wsd, encode_wsd};
use maybms_core::wsd::Wsd;
use maybms_relational::{Error, Result};
use maybms_storage::ship::{recv_msg, send_msg, Msg};
use maybms_storage::wal::{self, Polled, WalCursor};
use maybms_storage::{read_snapshot_state_with_vfs, std_vfs, wal_path_for, Vfs};

use crate::session::{QueryResult, Session, SessionError, SessionResult};
use crate::wire;

/// How long without any message from the primary before `SHOW REPLICATION
/// STATUS` reports a replica as stale. The primary heartbeats every 25 ms
/// by default while idle, so a full second of silence means a dead
/// primary, a cut connection, or a stalled serve loop — reads may be
/// arbitrarily behind.
pub const STALE_AFTER: Duration = Duration::from_secs(1);

/// Cached handles into the global metrics registry for the replication
/// layer (one registry lookup per process, one relaxed atomic per event).
struct ReplMetrics {
    /// WAL records streamed to followers (`repl.shipped_records`).
    shipped_records: Arc<Counter>,
    /// Payload bytes of those records (`repl.shipped_bytes`).
    shipped_bytes: Arc<Counter>,
    /// Idle heartbeats sent to followers (`repl.heartbeats`).
    heartbeats: Arc<Counter>,
    /// Follower reconnect attempts after a failed or dropped connection
    /// (`repl.reconnects`).
    reconnects: Arc<Counter>,
    /// Backoff schedules returned to base after a healthy message
    /// (`repl.backoff_resets`).
    backoff_resets: Arc<Counter>,
    /// Shipped records a replica applied (`repl.applied_records`).
    applied_records: Arc<Counter>,
}

fn metrics() -> &'static ReplMetrics {
    static M: OnceLock<ReplMetrics> = OnceLock::new();
    M.get_or_init(|| ReplMetrics {
        shipped_records: maybms_obs::counter("repl.shipped_records"),
        shipped_bytes: maybms_obs::counter("repl.shipped_bytes"),
        heartbeats: maybms_obs::counter("repl.heartbeats"),
        reconnects: maybms_obs::counter("repl.reconnects"),
        backoff_resets: maybms_obs::counter("repl.backoff_resets"),
        applied_records: maybms_obs::counter("repl.applied_records"),
    })
}

/// A lock-free live view of a replica's position, shared between the
/// applying thread and the replica's session so `SHOW REPLICATION STATUS`
/// can report staleness *as data* without taking the replica mutex:
/// last-applied LSN, the primary's last known durable LSN, and how long
/// ago the primary was last heard from.
#[derive(Debug)]
pub struct ReplStatus {
    applied_lsn: AtomicU64,
    primary_lsn: AtomicU64,
    /// Nanoseconds from `epoch` to the last received message (0 = never).
    last_contact_ns: AtomicU64,
    epoch: Instant,
}

impl ReplStatus {
    fn new() -> ReplStatus {
        ReplStatus {
            applied_lsn: AtomicU64::new(0),
            primary_lsn: AtomicU64::new(0),
            last_contact_ns: AtomicU64::new(0),
            epoch: Instant::now(), // maybms-lint: allow(determinism) -- control-plane wall clock (heartbeat/staleness); applied bytes come solely from WAL records
        }
    }

    fn touch(&self) {
        self.last_contact_ns
            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn set_applied(&self, lsn: u64) {
        self.applied_lsn.store(lsn, Ordering::Relaxed);
    }

    fn set_primary(&self, lsn: u64) {
        self.primary_lsn.store(lsn, Ordering::Relaxed);
    }

    /// LSN of the last record the replica has applied.
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn.load(Ordering::Relaxed)
    }

    /// The primary's last known durable LSN (0 until the first message).
    pub fn primary_lsn(&self) -> u64 {
        self.primary_lsn.load(Ordering::Relaxed)
    }

    /// How long since the primary was last heard from (since the
    /// replica's construction until the first message arrives).
    pub fn since_last_contact(&self) -> Duration {
        let at = Duration::from_nanos(self.last_contact_ns.load(Ordering::Relaxed));
        self.epoch.elapsed().saturating_sub(at)
    }
}

/// The serving side of replication: watches a database's files (snapshot
/// pair + WAL) and streams committed records to connected followers.
///
/// A `Primary` does not own the database — the read-write [`Session`]
/// does. It opens its own read-only handles on the files, so it can run
/// from any thread next to the session that is executing statements; it
/// only ever observes fully framed, fsynced records.
///
/// An idle serve loop blocks on the WAL's **commit notification**
/// ([`maybms_storage::wal::commit_notify`]): a commit appended by the
/// serving session wakes it immediately, so same-process shipping has no
/// poll-interval latency floor. The wait is bounded by an **exponential
/// backoff**: each empty poll doubles the bound from
/// [`Primary::with_poll_interval`]'s base up to
/// [`Primary::with_max_poll_interval`]'s cap (the re-poll cadence for
/// appends from other processes, which cannot signal), and any shipped
/// record (or log swap) resets it — a hot primary is tailed tightly, a
/// quiet one costs almost nothing. Heartbeats are **time-based**: while
/// idle, one is sent whenever [`Primary::with_heartbeat_interval`] has
/// elapsed since the last outbound message, so followers can bound
/// staleness (see [`Replica::is_stale`]) regardless of poll cadence.
#[derive(Debug, Clone)]
pub struct Primary {
    path: PathBuf,
    shutdown: Arc<AtomicBool>,
    poll_interval: Duration,
    max_poll_interval: Duration,
    heartbeat_interval: Duration,
    vfs: Arc<dyn Vfs>,
}

impl Primary {
    /// A primary serving the database at `path` (the same path the
    /// serving [`Session::open`] used). The database must exist — open
    /// the session first.
    pub fn new(path: impl AsRef<Path>) -> Primary {
        Primary {
            path: path.as_ref().to_path_buf(),
            shutdown: Arc::new(AtomicBool::new(false)),
            poll_interval: Duration::from_millis(1),
            max_poll_interval: Duration::from_millis(16),
            heartbeat_interval: Duration::from_millis(25),
            vfs: std_vfs(),
        }
    }

    /// Overrides the *base* interval idle serve loops re-poll the log at
    /// (default 1 ms); consecutive empty polls back off exponentially
    /// from here.
    pub fn with_poll_interval(mut self, interval: Duration) -> Primary {
        self.poll_interval = interval;
        self
    }

    /// Overrides the backoff *cap* on the idle re-poll interval (default
    /// 16 ms). A quiet log is re-polled this often at most.
    pub fn with_max_poll_interval(mut self, interval: Duration) -> Primary {
        self.max_poll_interval = interval;
        self
    }

    /// Overrides how much idle time passes between heartbeats (default
    /// 25 ms). Followers use heartbeats to bound their staleness
    /// estimate, so this should be well under the follower's
    /// [`Replica::is_stale`] timeout.
    pub fn with_heartbeat_interval(mut self, interval: Duration) -> Primary {
        self.heartbeat_interval = interval;
        self
    }

    /// Routes the primary's file reads through an explicit [`Vfs`] —
    /// fault-injection tests serve from a
    /// [`maybms_storage::FaultVfs`]-backed database.
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Primary {
        self.vfs = vfs;
        self
    }

    /// Tells every serve loop (and accept loop) to exit at its next poll,
    /// and wakes loops parked in [`wal::wait_for_commit`] so "next poll"
    /// is now rather than the end of a long idle interval.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let notify = wal::commit_notify_in(&*self.vfs, &wal_path_for(&self.path));
        wal::wake_commit_waiters(&notify);
    }

    /// Whether [`Primary::stop`] was called.
    pub fn is_stopped(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Serves one follower connection, blocking until the stream drops,
    /// the follower misbehaves, or [`Primary::stop`] is called. The
    /// returned error is the reason the connection ended (a disconnected
    /// follower surfaces as an I/O error — reconnection is the
    /// follower's job).
    pub fn serve<S: Read + Write>(&self, mut stream: S) -> Result<()> {
        let hello = recv_msg(&mut stream)?;
        let Msg::Hello { last_lsn, .. } = hello else {
            return Err(Error::Storage(format!(
                "expected Hello to open the conversation, got {hello:?}"
            )));
        };
        let mut follower_lsn = last_lsn;
        let wal_path = wal_path_for(&self.path);
        // Same-process commits signal this handle from `Wal::append`, so
        // an idle serve loop wakes immediately instead of waiting out its
        // poll interval; the interval remains as the fallback cadence for
        // appends from *other* processes, which cannot signal it.
        let commit_notify = wal::commit_notify(&wal_path);
        let mut commits_seen = wal::commit_seq(&commit_notify);
        // whether the last idle wait gave up without a commit signal —
        // if records then show up anyway, the notification path missed
        // them (a cross-process appender) and the poll was a fallback
        let mut waited_out = false;
        let mut last_sent = Instant::now(); // maybms-lint: allow(determinism) -- control-plane wall clock (heartbeat/staleness); applied bytes come solely from WAL records
        'catchup: loop {
            if self.is_stopped() {
                return Ok(());
            }
            // Where does the follower stand relative to the current log?
            let head = wal::head_with_vfs(&*self.vfs, &wal_path)?;
            if follower_lsn < head.base_lsn || follower_lsn > head.last_lsn {
                // Behind the last checkpoint (its records were compacted
                // into the snapshot) or from a foreign timeline: full
                // state transfer, then stream from the snapshot's LSN.
                let (generation, snap_lsn, payload) = self.consistent_snapshot()?;
                send_msg(&mut stream, &Msg::Snapshot { generation, last_lsn: snap_lsn, payload })?;
                last_sent = Instant::now(); // maybms-lint: allow(determinism) -- control-plane wall clock (heartbeat/staleness); applied bytes come solely from WAL records
                follower_lsn = snap_lsn;
            }
            let mut cursor = match WalCursor::open_with_vfs(Arc::clone(&self.vfs), &wal_path, follower_lsn)
            {
                Ok(c) => c,
                Err(_) => continue 'catchup, // swapped mid-decision; retry
            };
            let mut idle_sleep = self.poll_interval;
            loop {
                if self.is_stopped() {
                    return Ok(());
                }
                match cursor.poll()? {
                    Polled::Reset { .. } => {
                        // a checkpoint swapped the log; the outer loop
                        // re-decides (stream on if still covered, fall
                        // back to a snapshot transfer if not)
                        continue 'catchup;
                    }
                    Polled::Records(recs) if recs.is_empty() => {
                        if last_sent.elapsed() >= self.heartbeat_interval {
                            // the empty poll just proved the cursor is at
                            // the log's end — no file scan needed
                            send_msg(
                                &mut stream,
                                &Msg::Heartbeat {
                                    generation: cursor.generation(),
                                    last_lsn: cursor.lsn(),
                                },
                            )?;
                            metrics().heartbeats.inc();
                            last_sent = Instant::now(); // maybms-lint: allow(determinism) -- control-plane wall clock (heartbeat/staleness); applied bytes come solely from WAL records
                        }
                        // block until a commit signals (instant for
                        // same-process appends) or the backoff interval
                        // elapses (covers foreign-process appends)
                        let seen_before = commits_seen;
                        commits_seen =
                            wal::wait_for_commit(&commit_notify, commits_seen, idle_sleep);
                        waited_out = commits_seen == seen_before;
                        // exponential backoff while the log stays quiet
                        idle_sleep = (idle_sleep * 2).min(self.max_poll_interval);
                    }
                    Polled::Records(recs) => {
                        if waited_out {
                            // the wait timed out yet the log had moved:
                            // these records arrived without an in-process
                            // signal — a genuine fallback poll
                            wal::note_fallback_poll();
                            waited_out = false;
                        }
                        idle_sleep = self.poll_interval;
                        for (lsn, payload) in recs {
                            let bytes = payload.len() as u64;
                            send_msg(&mut stream, &Msg::Record { lsn, payload })?;
                            metrics().shipped_records.inc();
                            metrics().shipped_bytes.add(bytes);
                            last_sent = Instant::now(); // maybms-lint: allow(determinism) -- control-plane wall clock (heartbeat/staleness); applied bytes come solely from WAL records
                            follower_lsn = lsn;
                        }
                    }
                }
            }
        }
    }

    /// Reads a `(generation, last_lsn, payload)` triple where the
    /// snapshot pair and the WAL agree — retrying across the tiny window
    /// in which a checkpoint has published its snapshot but not yet
    /// swapped the log.
    fn consistent_snapshot(&self) -> Result<(u64, u64, Vec<u8>)> {
        for _ in 0..500 {
            let head = wal::head_with_vfs(&*self.vfs, &wal_path_for(&self.path))?;
            match read_snapshot_state_with_vfs(&*self.vfs, &self.path)? {
                Some((generation, lsn, payload))
                    if generation == head.generation && lsn == head.base_lsn =>
                {
                    return Ok((generation, lsn, payload))
                }
                None if head.generation == 0 => {
                    // never checkpointed: the state at LSN 0 is empty
                    return Ok((0, 0, encode_wsd(&Wsd::new())));
                }
                _ => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        Err(Error::Storage(
            "could not observe a consistent snapshot/WAL pair (checkpoint in progress?)".into(),
        ))
    }

    /// [`Primary::serve`] on a new thread; the handle yields the reason
    /// the connection ended.
    pub fn spawn_serve<S: Read + Write + Send + 'static>(
        &self,
        stream: S,
    ) -> JoinHandle<Result<()>> {
        let this = self.clone();
        std::thread::spawn(move || this.serve(stream))
    }

    /// Accepts connections on `listener` (one serve thread each) until
    /// [`Primary::stop`]. The listener is switched to non-blocking so the
    /// accept loop can observe the stop flag.
    ///
    /// The port is shared with Prometheus scrapes: a connection whose
    /// first bytes are `GET ` is answered with one HTTP response carrying
    /// the global metrics registry in text exposition format; anything
    /// else is a follower speaking the ship protocol (whose `Hello`
    /// frame can never start with `GET `).
    pub fn listen(&self, listener: TcpListener) -> Result<JoinHandle<()>> {
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Storage(format!("listener non-blocking: {e}")))?;
        let this = self.clone();
        Ok(std::thread::spawn(move || {
            let mut workers = Vec::new();
            while !this.is_stopped() {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        let _ = stream.set_nodelay(true);
                        // the accepted stream may inherit the listener's
                        // non-blocking mode on some platforms
                        let _ = stream.set_nonblocking(false);
                        if sniff_http(&stream) {
                            workers.push(std::thread::spawn(move || serve_metrics_http(stream)));
                        } else {
                            workers.push(this.spawn_serve(stream));
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        }))
    }
}

/// Peeks a fresh connection's first bytes without consuming them: `GET `
/// means an HTTP Prometheus scrape, anything else the ship protocol.
/// Waits briefly for the client's first bytes (both kinds of client send
/// immediately after connecting).
pub fn sniff_http(stream: &TcpStream) -> bool {
    matches!(peek_first_bytes(stream), Some(four) if &four == b"GET ")
}

/// Peeks a fresh connection's first four bytes without consuming them
/// (`None` when the peer closed or sent nothing within the grace
/// period) — the protocol-sniffing primitive shared by
/// [`Primary::listen`] and the `maybms-server` listener, which
/// multiplexes HTTP metrics scrapes, the ship protocol and the SQL
/// session protocol on one port.
pub fn peek_first_bytes(stream: &TcpStream) -> Option<[u8; 4]> {
    let mut buf = [0u8; 4];
    for _ in 0..200 {
        match stream.peek(&mut buf) {
            Ok(n) if n >= 4 => return Some(buf),
            Ok(0) => return None, // peer closed without sending anything
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(_) => return None,
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    None
}

/// Answers one Prometheus scrape: drains the request head (its contents
/// don't matter — every path serves the same registry) and writes the
/// global metrics in text exposition format, then closes.
pub fn serve_metrics_http(mut stream: TcpStream) -> Result<()> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => return Err(Error::Storage(format!("metrics scrape read: {e}"))),
        }
    }
    let body = maybms_obs::prometheus_text(maybms_obs::global());
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(response.as_bytes())
        .map_err(|e| Error::Storage(format!("metrics scrape write: {e}")))
}

/// A follower's live connection to a primary (the stream after the
/// `Hello` handshake was sent).
#[derive(Debug)]
pub struct ReplicaConn<S> {
    stream: S,
}

impl<S: Read + Write> ReplicaConn<S> {
    /// Receives the next message from the primary, blocking. A torn or
    /// corrupt frame (or a dropped connection) is an error — reconnect
    /// with [`Replica::connect`] to resume.
    pub fn recv(&mut self) -> Result<Msg> {
        recv_msg(&mut self.stream)
    }
}

/// The applying side of replication: a **read-only** in-memory session
/// that tracks the primary's log position and swallows its shipped
/// records.
///
/// Queries run as usual through [`Replica::query`] (or
/// [`Replica::session`]); mutations are refused with
/// [`SessionError::ReadOnlyReplica`]. Because replay is deterministic,
/// after applying the primary's prefix up to LSN *x* the replica's
/// decomposition is byte-identical (under the codec) to the primary's
/// state at *x* — `tests/replication.rs` holds that as an invariant.
#[derive(Debug)]
pub struct Replica {
    session: Session,
    generation: u64,
    applied_lsn: u64,
    /// The primary's last known durable LSN (from records/heartbeats).
    primary_lsn: u64,
    /// When the primary was last heard from (any message — records and
    /// heartbeats alike prove liveness).
    last_contact: Instant,
    /// Mirror of the position fields above, shared with the session so
    /// `SHOW REPLICATION STATUS` reads live values without this struct.
    status: Arc<ReplStatus>,
}

impl Default for Replica {
    fn default() -> Replica {
        Replica::new()
    }
}

impl Replica {
    /// A fresh, empty follower (position 0: the first connection will
    /// receive either the full log from the beginning or a snapshot).
    pub fn new() -> Replica {
        let mut session = Session::new();
        session.set_read_only(true);
        let status = Arc::new(ReplStatus::new());
        session.set_repl_status(Arc::clone(&status));
        Replica {
            session,
            generation: 0,
            applied_lsn: 0,
            primary_lsn: 0,
            last_contact: Instant::now(), // maybms-lint: allow(determinism) -- control-plane wall clock (heartbeat/staleness); applied bytes come solely from WAL records
            status,
        }
    }

    /// The live position view `SHOW REPLICATION STATUS` reads — shareable
    /// with monitoring threads.
    pub fn status(&self) -> &Arc<ReplStatus> {
        &self.status
    }

    /// The read-only session — run SELECTs against it directly.
    pub fn session(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Executes a query against the replica's state. Mutations fail with
    /// [`SessionError::ReadOnlyReplica`].
    pub fn query(&mut self, sql: &str) -> SessionResult<QueryResult> {
        self.session.execute(sql)
    }

    /// LSN of the last record this replica has applied.
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn
    }

    /// The snapshot generation of the replica's state.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The primary's last known durable LSN (0 until the first message).
    /// `primary_lsn() == applied_lsn()` means "caught up as of the last
    /// message".
    pub fn primary_lsn(&self) -> u64 {
        self.primary_lsn
    }

    /// How long since the primary was last heard from (any message —
    /// heartbeats keep an idle connection fresh). Counted from the
    /// replica's construction until the first message arrives.
    pub fn since_last_contact(&self) -> Duration {
        self.last_contact.elapsed()
    }

    /// Whether the primary has been silent longer than `timeout`. The
    /// primary heartbeats while idle (see
    /// [`Primary::with_heartbeat_interval`], default 25 ms), so with a
    /// timeout comfortably above that interval a stale replica means a
    /// dead primary, a cut connection, or a stalled serve loop — callers
    /// should stop trusting their reads' freshness and reconnect (e.g.
    /// via [`follow_with_retry`]).
    pub fn is_stale(&self, timeout: Duration) -> bool {
        self.last_contact.elapsed() > timeout
    }

    /// Opens the conversation on `stream`: sends `Hello` naming this
    /// replica's position. Reconnecting after a dropped or torn stream is
    /// exactly this call again — the primary resumes from `applied_lsn`.
    pub fn connect<S: Read + Write>(&self, mut stream: S) -> Result<ReplicaConn<S>> {
        send_msg(
            &mut stream,
            &Msg::Hello { generation: self.generation, last_lsn: self.applied_lsn },
        )?;
        Ok(ReplicaConn { stream })
    }

    /// Applies one received message. Records at or below `applied_lsn`
    /// are skipped (idempotent across reconnects); a record that *skips*
    /// LSNs is a protocol violation and is refused. Returns `true` when
    /// the replica's state advanced.
    pub fn apply_msg(&mut self, msg: Msg) -> SessionResult<bool> {
        self.last_contact = Instant::now(); // maybms-lint: allow(determinism) -- control-plane wall clock (heartbeat/staleness); applied bytes come solely from WAL records
        self.status.touch();
        match msg {
            Msg::Snapshot { generation, last_lsn, payload } => {
                let wsd = decode_wsd(&payload).map_err(SessionError::storage)?;
                *self.session.wsd_mut() = wsd;
                self.session.cleaning_log.clear();
                self.generation = generation;
                self.applied_lsn = last_lsn;
                self.primary_lsn = self.primary_lsn.max(last_lsn);
                self.status.set_applied(self.applied_lsn);
                self.status.set_primary(self.primary_lsn);
                Ok(true)
            }
            Msg::Record { lsn, payload } => {
                self.primary_lsn = self.primary_lsn.max(lsn);
                self.status.set_primary(self.primary_lsn);
                if lsn <= self.applied_lsn {
                    return Ok(false); // duplicate across a reconnect
                }
                if lsn != self.applied_lsn + 1 {
                    return Err(SessionError::storage(Error::Storage(format!(
                        "gap in shipped log: applied LSN {} but received LSN {lsn}",
                        self.applied_lsn
                    ))));
                }
                let stmts = wire::decode_wal_record(&payload).map_err(SessionError::storage)?;
                for stmt in &stmts {
                    // the internal replay path: the record committed on
                    // the primary, so the read-only gate does not apply
                    self.session.apply(stmt).map_err(|e| {
                        SessionError::storage(Error::Storage(format!(
                            "replica replay failed on {stmt:?}: {e}"
                        )))
                    })?;
                }
                self.applied_lsn = lsn;
                self.status.set_applied(lsn);
                metrics().applied_records.inc();
                Ok(true)
            }
            Msg::Heartbeat { generation: _, last_lsn } => {
                self.primary_lsn = self.primary_lsn.max(last_lsn);
                self.status.set_primary(self.primary_lsn);
                Ok(false)
            }
            Msg::Hello { .. } => Err(SessionError::storage(Error::Storage(
                "unexpected Hello from the primary".into(),
            ))),
        }
    }

    /// Receives and applies messages until this replica has applied
    /// everything up to (at least) `lsn` — "read your writes" for a
    /// caller that knows the primary's LSN (see [`Session::last_lsn`]).
    pub fn sync_to<S: Read + Write>(
        &mut self,
        conn: &mut ReplicaConn<S>,
        lsn: u64,
    ) -> SessionResult<()> {
        while self.applied_lsn < lsn {
            let msg = conn.recv().map_err(SessionError::storage)?;
            self.apply_msg(msg)?;
        }
        Ok(())
    }
}

/// Drives a shared replica from its own thread: connects, then applies
/// every incoming message until the stream drops (the returned error is
/// the disconnect reason). The mutex is held only while applying, so
/// queries interleave freely. For a follower that should survive primary
/// restarts and cut connections, use [`follow_with_retry`].
pub fn follow<S: Read + Write>(replica: &Mutex<Replica>, stream: S) -> SessionResult<()> {
    let mut conn = {
        let r = replica.lock().expect("replica lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        r.connect(stream).map_err(SessionError::storage)?
    };
    loop {
        let msg = conn.recv().map_err(SessionError::storage)?;
        replica.lock().expect("replica lock").apply_msg(msg)?; // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
    }
}

/// Capped exponential backoff with jitter, for follower reconnects.
///
/// Delay *n* is drawn uniformly from the upper half of
/// `min(base · 2ⁿ, cap)` ("equal jitter": half the ceiling is
/// guaranteed, the rest is random so a fleet of followers that lost the
/// same primary does not reconnect in lockstep). [`Backoff::reset`]
/// returns to the base delay once a connection proves healthy.
///
/// The jitter source is a tiny self-contained xorshift64 — deterministic
/// per seed ([`Backoff::with_seed`]), no dependency, not used for
/// anything security-relevant.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A backoff starting at `base` and capped at `cap` per delay.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        // a fixed golden-ratio seed: callers that care use `with_seed`
        Backoff::with_seed(base, cap, 0x9e37_79b9_7f4a_7c15)
    }

    /// As [`Backoff::new`] with an explicit jitter seed (tests pin the
    /// delay sequence; distinct followers should use distinct seeds).
    pub fn with_seed(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff { base, cap, attempt: 0, rng: seed.max(1) }
    }

    /// The next delay to sleep before re-trying, advancing the attempt
    /// counter.
    pub fn next_delay(&mut self) -> Duration {
        let base = self.base.as_nanos().max(1) as u64;
        let cap = self.cap.as_nanos().max(1) as u64;
        let ceil = base
            .checked_shl(self.attempt.min(32))
            .unwrap_or(u64::MAX)
            .clamp(1, cap);
        self.attempt = self.attempt.saturating_add(1);
        let half = ceil / 2;
        Duration::from_nanos(half + self.next_rand() % (ceil - half).max(1))
    }

    /// Returns to the base delay (call once a connection proves healthy).
    /// A reset that actually cancels pending backoff (attempts were
    /// handed out since the last reset) counts as `repl.backoff_resets`.
    pub fn reset(&mut self) {
        if self.attempt > 0 {
            metrics().backoff_resets.inc();
        }
        self.attempt = 0;
    }

    /// How many delays have been handed out since the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

/// Sleeps `total` in short slices so `stop` is observed promptly.
fn sleep_interruptibly(total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(10);
    let mut left = total;
    while left > Duration::ZERO && !stop.load(Ordering::Relaxed) {
        let s = left.min(slice);
        std::thread::sleep(s);
        left = left.saturating_sub(s);
    }
}

/// [`follow`] that survives a flapping primary: when the connection
/// drops (or cannot be established), it sleeps per `backoff` and calls
/// `connect` again — resuming **idempotently by LSN**, since every
/// reconnect is a fresh `Hello` naming `applied_lsn` and
/// [`Replica::apply_msg`] skips anything already applied. The backoff
/// resets whenever a message arrives, so an actually-healthy connection
/// always restarts the schedule from its base delay.
///
/// Returns `Ok(())` once `stop` is raised (checked between messages,
/// during backoff sleeps, and before each reconnect — a stopped follower
/// parked on a silent connection notices at the next heartbeat). A
/// protocol violation from the primary (e.g. a gap in the shipped log)
/// is returned as the hard error it is; connection-level failures are
/// what the retry loop absorbs.
pub fn follow_with_retry<S, F>(
    replica: &Mutex<Replica>,
    mut connect: F,
    backoff: &mut Backoff,
    stop: &AtomicBool,
) -> SessionResult<()>
where
    S: Read + Write,
    F: FnMut() -> std::io::Result<S>,
{
    while !stop.load(Ordering::Relaxed) {
        let conn = connect().and_then(|stream| {
            replica
                .lock()
                .expect("replica lock") // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
                .connect(stream)
                .map_err(|e| std::io::Error::other(e.to_string()))
        });
        let mut conn = match conn {
            Ok(c) => c,
            Err(_) => {
                metrics().reconnects.inc();
                sleep_interruptibly(backoff.next_delay(), stop);
                continue;
            }
        };
        loop {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            match conn.recv() {
                Ok(msg) => {
                    replica.lock().expect("replica lock").apply_msg(msg)?; // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
                    backoff.reset();
                }
                Err(_) => break, // torn or dropped stream: reconnect
            }
        }
        metrics().reconnects.inc();
        sleep_interruptibly(backoff.next_delay(), stop);
    }
    Ok(())
}
