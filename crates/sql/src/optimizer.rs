//! Plan rewriting: the "optimized query plans produced by MayBMS" of the
//! demo (§1). Rule-based:
//!
//! 1. **Selection splitting & pushdown** — conjuncts of a selection above a
//!    product/join are routed to the side whose schema covers them; mixed
//!    conjuncts become the join condition (turning σ(A×B) into A ⋈ B).
//! 2. **Selection fusion** — σ_p(σ_q(X)) → σ_{p∧q}(X).
//! 3. **Selection through union** — σ(A ∪ B) → σ(A) ∪ σ(B).
//! 4. **Projection fusion** — π(π(X)) keeps only the outer one.
//!
//! Rules are applied to a fixpoint. The optimizer needs the catalog (the
//! WSD's relation schemas) to attribute columns to sides.
//!
//! # Cost-based join ordering
//!
//! After the rule fixpoint, clusters of three or more join/product
//! inputs are re-ordered by a bushy dynamic program over input subsets
//! ([`optimize_with_stats`]): per-subset cardinalities come from the
//! [`maybms_core::stats::WsdStats`] collector (per-column distinct
//! counts, textbook selectivity rules), the cost of a node is the number
//! of rows it touches (hash join: both inputs plus output; nested loop:
//! the pair product), and each cross conjunct attaches to the first
//! subtree covering both its sides. The chosen order is wrapped in a
//! projection restoring the original column order, so the plan's schema
//! — and its world semantics — are unchanged. Two-input joins keep their
//! AST order (nothing to gain, and EXPLAIN stays stable).

use std::collections::HashMap;

use maybms_core::algebra::Query;
use maybms_core::stats::{estimate_query, selectivity, Estimate, WsdStats};
use maybms_core::wsd::Wsd;
use maybms_relational::{CmpOp, Expr, Result, Schema};

/// Reordering clusters above this size would make the subset DP itself
/// the bottleneck; such plans keep their AST order.
const MAX_REORDER_INPUTS: usize = 12;

/// The inferred output schema of a plan node. Delegates to the single
/// implementation in the physical layer ([`maybms_core::exec::schema_of`]),
/// which both the optimizer's pushdown rules and physical-plan
/// compilation share.
pub fn schema_of(q: &Query, wsd: &Wsd) -> Result<Schema> {
    maybms_core::exec::schema_of(q, wsd)
}

/// Optimizes a plan to a fixpoint (bounded rounds for safety), then
/// reorders join clusters with a throwaway stats collector.
pub fn optimize(q: &Query, wsd: &Wsd) -> Result<Query> {
    optimize_with_stats(q, wsd, &mut WsdStats::new())
}

/// [`optimize`] with a caller-held stats collector, so repeated queries
/// against the same decomposition reuse cached per-relation statistics.
pub fn optimize_with_stats(q: &Query, wsd: &Wsd, stats: &mut WsdStats) -> Result<Query> {
    let mut cur = q.clone();
    for _ in 0..16 {
        let (next, changed) = rewrite(&cur, wsd)?;
        cur = next;
        if !changed {
            break;
        }
    }
    reorder_joins(&cur, wsd, stats)
}

fn rewrite(q: &Query, wsd: &Wsd) -> Result<(Query, bool)> {
    // bottom-up
    let (q, mut changed) = match q {
        Query::Table(_) => (q.clone(), false),
        Query::Select(i, p) => {
            let (i2, c) = rewrite(i, wsd)?;
            (Query::Select(Box::new(i2), p.clone()), c)
        }
        Query::Project(i, cols) => {
            let (i2, c) = rewrite(i, wsd)?;
            (Query::Project(Box::new(i2), cols.clone()), c)
        }
        Query::Product(a, b) => {
            let (a2, ca) = rewrite(a, wsd)?;
            let (b2, cb) = rewrite(b, wsd)?;
            (Query::Product(Box::new(a2), Box::new(b2)), ca || cb)
        }
        Query::Join(a, b, p) => {
            let (a2, ca) = rewrite(a, wsd)?;
            let (b2, cb) = rewrite(b, wsd)?;
            (Query::Join(Box::new(a2), Box::new(b2), p.clone()), ca || cb)
        }
        Query::Union(a, b) => {
            let (a2, ca) = rewrite(a, wsd)?;
            let (b2, cb) = rewrite(b, wsd)?;
            (Query::Union(Box::new(a2), Box::new(b2)), ca || cb)
        }
        Query::Difference(a, b) => {
            let (a2, ca) = rewrite(a, wsd)?;
            let (b2, cb) = rewrite(b, wsd)?;
            (Query::Difference(Box::new(a2), Box::new(b2)), ca || cb)
        }
        Query::Distinct(i) => {
            let (i2, c) = rewrite(i, wsd)?;
            (Query::Distinct(Box::new(i2)), c)
        }
        Query::Rename(i, f, t) => {
            let (i2, c) = rewrite(i, wsd)?;
            (Query::Rename(Box::new(i2), f.clone(), t.clone()), c)
        }
        Query::Qualify(i, p) => {
            let (i2, c) = rewrite(i, wsd)?;
            (Query::Qualify(Box::new(i2), p.clone()), c)
        }
    };

    // top rules
    let rewritten = match &q {
        // rule 2: selection fusion
        Query::Select(inner, p) => {
            if let Query::Select(inner2, p2) = inner.as_ref() {
                Some(Query::Select(
                    inner2.clone(),
                    p2.clone().and(p.clone()),
                ))
            } else if let Query::Union(a, b) = inner.as_ref() {
                // rule 3: through union
                Some(Query::Union(
                    Box::new(Query::Select(a.clone(), p.clone())),
                    Box::new(Query::Select(b.clone(), p.clone())),
                ))
            } else if let Query::Product(a, b) = inner.as_ref() {
                // rule 1: split & push into the product
                Some(push_into_product(a, b, p, wsd, false)?)
            } else if let Query::Join(a, b, jp) = inner.as_ref() {
                // fold extra conjuncts into the join
                let combined = jp.clone().and(p.clone());
                Some(push_into_product(a, b, &combined, wsd, true)?)
            } else {
                None
            }
        }
        // rule 4: projection fusion — π_outer(π_inner(X)) = π_outer(X)
        // (valid because the outer list must be a subset of the inner one)
        Query::Project(inner, cols) => {
            if let Query::Project(inner2, _) = inner.as_ref() {
                Some(Query::Project(inner2.clone(), cols.clone()))
            } else {
                None
            }
        }
        _ => None,
    };

    match rewritten {
        Some(r) => {
            changed = true;
            Ok((r, changed))
        }
        None => Ok((q, changed)),
    }
}

/// Distributes the conjuncts of `pred` over `a × b`: conjuncts referencing
/// only `a`'s columns become σ on `a`, only `b`'s on `b`, and the rest the
/// join condition.
fn push_into_product(
    a: &Query,
    b: &Query,
    pred: &Expr,
    wsd: &Wsd,
    _was_join: bool,
) -> Result<Query> {
    let sa = schema_of(a, wsd)?;
    let sb = schema_of(b, wsd)?;
    let mut left: Vec<Expr> = Vec::new();
    let mut right: Vec<Expr> = Vec::new();
    let mut cross: Vec<Expr> = Vec::new();
    for c in pred.conjuncts() {
        let cols = c.columns();
        // a column that exists on both sides is ambiguous → treat as cross
        let only_a = cols.iter().all(|n| sa.contains(n) && !sb.contains(n));
        let only_b = cols.iter().all(|n| sb.contains(n) && !sa.contains(n));
        if only_a {
            left.push(c.clone());
        } else if only_b {
            right.push(c.clone());
        } else {
            cross.push(c.clone());
        }
    }
    let la: Query = if left.is_empty() {
        a.clone()
    } else {
        Query::Select(Box::new(a.clone()), Expr::conjoin(left))
    };
    let rb: Query = if right.is_empty() {
        b.clone()
    } else {
        Query::Select(Box::new(b.clone()), Expr::conjoin(right))
    };
    Ok(if cross.is_empty() {
        Query::Product(Box::new(la), Box::new(rb))
    } else {
        Query::Join(Box::new(la), Box::new(rb), Expr::conjoin(cross))
    })
}

/// Walks the plan, reordering every join/product cluster of three or
/// more inputs via the subset DP. Non-join nodes recurse structurally.
fn reorder_joins(q: &Query, wsd: &Wsd, stats: &mut WsdStats) -> Result<Query> {
    Ok(match q {
        Query::Join(..) | Query::Product(..) => reorder_cluster(q, wsd, stats)?,
        Query::Table(_) => q.clone(),
        Query::Select(i, p) => {
            Query::Select(Box::new(reorder_joins(i, wsd, stats)?), p.clone())
        }
        Query::Project(i, cols) => {
            Query::Project(Box::new(reorder_joins(i, wsd, stats)?), cols.clone())
        }
        Query::Union(a, b) => Query::Union(
            Box::new(reorder_joins(a, wsd, stats)?),
            Box::new(reorder_joins(b, wsd, stats)?),
        ),
        Query::Difference(a, b) => Query::Difference(
            Box::new(reorder_joins(a, wsd, stats)?),
            Box::new(reorder_joins(b, wsd, stats)?),
        ),
        Query::Distinct(i) => Query::Distinct(Box::new(reorder_joins(i, wsd, stats)?)),
        Query::Rename(i, f, t) => {
            Query::Rename(Box::new(reorder_joins(i, wsd, stats)?), f.clone(), t.clone())
        }
        Query::Qualify(i, p) => {
            Query::Qualify(Box::new(reorder_joins(i, wsd, stats)?), p.clone())
        }
    })
}

/// Collects the maximal join/product cluster rooted at `q`: its non-join
/// inputs (each recursively reordered) and every join conjunct.
fn flatten_joins(
    q: &Query,
    wsd: &Wsd,
    stats: &mut WsdStats,
    inputs: &mut Vec<Query>,
    conjuncts: &mut Vec<Expr>,
) -> Result<()> {
    match q {
        Query::Join(a, b, p) => {
            flatten_joins(a, wsd, stats, inputs, conjuncts)?;
            flatten_joins(b, wsd, stats, inputs, conjuncts)?;
            conjuncts.extend(p.conjuncts().into_iter().cloned());
        }
        Query::Product(a, b) => {
            flatten_joins(a, wsd, stats, inputs, conjuncts)?;
            flatten_joins(b, wsd, stats, inputs, conjuncts)?;
        }
        other => inputs.push(reorder_joins(other, wsd, stats)?),
    }
    Ok(())
}

/// Rebuilds the cluster in its original shape (children still recursed)
/// when reordering does not apply.
fn keep_order(q: &Query, wsd: &Wsd, stats: &mut WsdStats) -> Result<Query> {
    Ok(match q {
        Query::Join(a, b, p) => Query::Join(
            Box::new(reorder_joins(a, wsd, stats)?),
            Box::new(reorder_joins(b, wsd, stats)?),
            p.clone(),
        ),
        Query::Product(a, b) => Query::Product(
            Box::new(reorder_joins(a, wsd, stats)?),
            Box::new(reorder_joins(b, wsd, stats)?),
        ),
        other => reorder_joins(other, wsd, stats)?,
    })
}

/// The `l = r` column pair of a cross equality conjunct, if any.
fn eq_cols(c: &Expr) -> Option<(&str, &str)> {
    if let Expr::Cmp(CmpOp::Eq, a, b) = c {
        if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
            return Some((ca, cb));
        }
    }
    None
}

/// Reorders one join/product cluster by a bushy dynamic program over the
/// power set of its inputs. Falls back to the AST order when the cluster
/// has fewer than three inputs, the inputs' column names collide, a
/// conjunct references unknown columns, or estimation fails.
fn reorder_cluster(q: &Query, wsd: &Wsd, stats: &mut WsdStats) -> Result<Query> {
    let mut inputs: Vec<Query> = Vec::new();
    let mut conjuncts: Vec<Expr> = Vec::new();
    flatten_joins(q, wsd, stats, &mut inputs, &mut conjuncts)?;
    let n = inputs.len();
    if !(3..=MAX_REORDER_INPUTS).contains(&n) {
        return keep_order(q, wsd, stats);
    }

    // The inputs' schemas; reordering needs globally unique column names
    // to re-attribute conjuncts and restore the output column order.
    let schemas: Vec<Schema> = match inputs.iter().map(|i| schema_of(i, wsd)).collect() {
        Ok(s) => s,
        Err(_) => return keep_order(q, wsd, stats),
    };
    let mut col_input: HashMap<String, usize> = HashMap::new();
    for (i, s) in schemas.iter().enumerate() {
        for name in s.names() {
            if col_input.insert(name.to_string(), i).is_some() {
                return keep_order(q, wsd, stats); // ambiguous column name
            }
        }
    }

    // Attribute every conjunct to the set of inputs it references.
    // Single-input conjuncts sink into their input as selections; free
    // conjuncts (no columns) re-attach above the cluster.
    let mut masked: Vec<(u32, Expr)> = Vec::new();
    let mut free: Vec<Expr> = Vec::new();
    for c in conjuncts {
        let mut mask = 0u32;
        for col in c.columns() {
            match col_input.get(col) {
                Some(&i) => mask |= 1 << i,
                None => return keep_order(q, wsd, stats),
            }
        }
        match mask.count_ones() {
            0 => free.push(c),
            1 => {
                let i = mask.trailing_zeros() as usize;
                inputs[i] = Query::Select(Box::new(inputs[i].clone()), c);
            }
            _ => masked.push((mask, c)),
        }
    }

    // Per-input and whole-cluster estimates; conjunct selectivities are
    // order-independent, so per-subset cardinalities are well defined.
    let ests: Vec<Estimate> = match inputs.iter().map(|i| estimate_query(i, wsd, stats)).collect()
    {
        Ok(e) => e,
        Err(_) => return keep_order(q, wsd, stats),
    };
    let mut global = Estimate { rows: 1.0, distinct: HashMap::new() };
    for e in &ests {
        global.rows *= e.rows.max(1.0);
        global.distinct.extend(e.distinct.clone());
    }
    let sels: Vec<f64> = masked.iter().map(|(_, c)| selectivity(c, &global)).collect();

    // Estimated output rows of every input subset.
    let full = (1usize << n) - 1;
    let mut rows = vec![0.0f64; full + 1];
    for (s, row) in rows.iter_mut().enumerate().skip(1) {
        let mut r = 1.0;
        for (i, e) in ests.iter().enumerate() {
            if s & (1 << i) != 0 {
                r *= e.rows;
            }
        }
        for ((mask, _), sel) in masked.iter().zip(&sels) {
            if (*mask as usize) & s == *mask as usize {
                r *= sel;
            }
        }
        *row = r;
    }

    // Bushy DP: cost[s] = cheapest way to join the subset, in rows
    // touched; conjuncts attach at the first node covering both sides.
    let mut cost = vec![f64::INFINITY; full + 1];
    let mut plan: Vec<Option<Query>> = vec![None; full + 1];
    let mut order: Vec<Vec<usize>> = vec![Vec::new(); full + 1];
    for i in 0..n {
        let s = 1usize << i;
        cost[s] = ests[i].rows;
        plan[s] = Some(inputs[i].clone());
        order[s] = vec![i];
    }
    for s in 1..=full {
        if s.count_ones() < 2 {
            continue;
        }
        // the canonical split keeps the subset's lowest input on the left
        let low = s & s.wrapping_neg();
        let mut best: Option<(f64, usize)> = None;
        let mut l = (s - 1) & s;
        while l > 0 {
            if l & low != 0 {
                let r = s & !l;
                // node conjuncts: covered by s, crossing the split
                let node: Vec<usize> = masked
                    .iter()
                    .enumerate()
                    .filter(|(_, (m, _))| {
                        let m = *m as usize;
                        m & s == m && m & l != 0 && m & r != 0
                    })
                    .map(|(k, _)| k)
                    .collect();
                let hashable = node.iter().any(|&k| {
                    eq_cols(&masked[k].1).is_some_and(|(a, b)| {
                        let ma = 1usize << col_input[a];
                        let mb = 1usize << col_input[b];
                        (ma & l != 0 && mb & r != 0) || (ma & r != 0 && mb & l != 0)
                    })
                });
                let pair = if hashable {
                    rows[l] + rows[r] + rows[s]
                } else {
                    rows[l] * rows[r]
                };
                let c = cost[l] + cost[r] + pair;
                if best.is_none_or(|(bc, _)| c < bc) {
                    best = Some((c, l));
                }
            }
            l = (l - 1) & s;
        }
        let (c, l) = best.expect("non-singleton subset has a split"); // maybms-lint: allow(no-panic-in-prod) -- every subset with two or more relations has at least one proper split, so a best split is always found
        let r = s & !l;
        let node: Vec<Expr> = masked
            .iter()
            .filter(|(m, _)| {
                let m = *m as usize;
                m & s == m && m & l != 0 && m & r != 0
            })
            .map(|(_, c)| c.clone())
            .collect();
        let (lp, rp) = (plan[l].clone().expect("built"), plan[r].clone().expect("built")); // maybms-lint: allow(no-panic-in-prod) -- the DP fills every smaller subset before visiting this one
        plan[s] = Some(if node.is_empty() {
            Query::Product(Box::new(lp), Box::new(rp))
        } else {
            Query::Join(Box::new(lp), Box::new(rp), Expr::conjoin(node))
        });
        cost[s] = c;
        order[s] = order[l].iter().chain(order[r].iter()).copied().collect();
    }

    let mut result = plan[full].take().expect("full subset built"); // maybms-lint: allow(no-panic-in-prod) -- the DP fills the full-set slot before extraction
    if !free.is_empty() {
        result = Query::Select(Box::new(result), Expr::conjoin(free));
    }
    // Restore the cluster's original column order so the surrounding
    // plan (and the final result schema) is unchanged.
    if order[full] != (0..n).collect::<Vec<_>>() {
        let names: Vec<String> =
            schemas.iter().flat_map(|s| s.names().into_iter().map(str::to_string)).collect();
        result = Query::Project(Box::new(result), names);
    }
    Ok(result)
}

/// Renders a plan tree for EXPLAIN.
pub fn explain(q: &Query) -> String {
    let mut out = String::new();
    render(q, 0, &mut out);
    out
}

fn render(q: &Query, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match q {
        Query::Table(n) => out.push_str(&format!("{pad}Scan {n}\n")),
        Query::Select(i, p) => {
            out.push_str(&format!("{pad}Select {p}\n"));
            render(i, depth + 1, out);
        }
        Query::Project(i, cols) => {
            out.push_str(&format!("{pad}Project [{}]\n", cols.join(", ")));
            render(i, depth + 1, out);
        }
        Query::Product(a, b) => {
            out.push_str(&format!("{pad}Product\n"));
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Join(a, b, p) => {
            out.push_str(&format!("{pad}Join on {p}\n"));
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Union(a, b) => {
            out.push_str(&format!("{pad}Union\n"));
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Difference(a, b) => {
            out.push_str(&format!("{pad}Difference\n"));
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Distinct(i) => {
            out.push_str(&format!("{pad}Distinct\n"));
            render(i, depth + 1, out);
        }
        Query::Rename(i, f, t) => {
            out.push_str(&format!("{pad}Rename {f} -> {t}\n"));
            render(i, depth + 1, out);
        }
        Query::Qualify(i, p) => {
            out.push_str(&format!("{pad}Qualify {p}\n"));
            render(i, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_core::examples::medical_wsd;
    use maybms_relational::{ColumnType, Schema};
    use maybms_worldset::eval::eval_in_all_worlds;

    fn two_table_wsd() -> Wsd {
        let mut w = medical_wsd();
        w.add_relation(
            "T",
            Schema::new(vec![("tname", ColumnType::Str), ("cost", ColumnType::Int)]),
        )
        .unwrap();
        w.push_certain(
            "T",
            vec![maybms_relational::Value::str("ultrasound"), maybms_relational::Value::Int(120)],
        )
        .unwrap();
        w.push_certain(
            "T",
            vec![maybms_relational::Value::str("TSH"), maybms_relational::Value::Int(40)],
        )
        .unwrap();
        w
    }

    #[test]
    fn pushdown_turns_product_into_join() {
        let w = two_table_wsd();
        let q = Query::table("R")
            .product(Query::table("T"))
            .select(
                Expr::col("test")
                    .eq(Expr::col("tname"))
                    .and(Expr::col("cost").gt(Expr::lit(50i64)))
                    .and(Expr::col("diagnosis").eq(Expr::lit("pregnancy"))),
            );
        let opt = optimize(&q, &w).unwrap();
        let txt = explain(&opt);
        assert!(txt.contains("Join on"), "expected a join, got:\n{txt}");
        assert!(
            txt.contains("Select (diagnosis = 'pregnancy')"),
            "left selection must be pushed down:\n{txt}"
        );
        assert!(
            txt.contains("Select (cost > 50)"),
            "right selection must be pushed down:\n{txt}"
        );
    }

    #[test]
    fn optimized_plan_is_equivalent() {
        let w = two_table_wsd();
        let q = Query::table("R")
            .product(Query::table("T"))
            .select(Expr::col("test").eq(Expr::col("tname")))
            .project(["diagnosis", "cost"]);
        let opt = optimize(&q, &w).unwrap();
        let lhs = q.eval(&w).unwrap().to_worldset(100_000).unwrap();
        let rhs = opt.eval(&w).unwrap().to_worldset(100_000).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
        // and both equal the per-world evaluation
        let oracle =
            eval_in_all_worlds(&w.to_worldset(100_000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&oracle, 1e-9));
    }

    #[test]
    fn selection_fusion_and_union_distribution() {
        let w = medical_wsd();
        let q = Query::table("R")
            .union(Query::table("R"))
            .select(Expr::col("diagnosis").eq(Expr::lit("obesity")))
            .select(Expr::col("test").eq(Expr::lit("BMI")));
        let opt = optimize(&q, &w).unwrap();
        let txt = explain(&opt);
        assert!(txt.starts_with("Union"), "selection should distribute:\n{txt}");
        let lhs = q.eval(&w).unwrap().to_worldset(100_000).unwrap();
        let rhs = opt.eval(&w).unwrap().to_worldset(100_000).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn projection_fusion() {
        let w = medical_wsd();
        let q = Query::table("R")
            .project(["diagnosis", "test"])
            .project(["test"]);
        let opt = optimize(&q, &w).unwrap();
        let txt = explain(&opt);
        assert_eq!(txt.matches("Project").count(), 1, "{txt}");
        let lhs = q.eval(&w).unwrap().to_worldset(1000).unwrap();
        let rhs = opt.eval(&w).unwrap().to_worldset(1000).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    fn three_table_wsd() -> Wsd {
        use maybms_relational::Value;
        let mut w = Wsd::new();
        w.add_relation("big1", Schema::new(vec![("x", ColumnType::Int)])).unwrap();
        w.add_relation(
            "big2",
            Schema::new(vec![("y", ColumnType::Int), ("tag", ColumnType::Int)]),
        )
        .unwrap();
        w.add_relation("tiny", Schema::new(vec![("z", ColumnType::Int)])).unwrap();
        for i in 0..20 {
            w.push_certain("big1", vec![Value::Int(i)]).unwrap();
            w.push_certain("big2", vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
        }
        w.push_certain("tiny", vec![Value::Int(1)]).unwrap();
        w
    }

    /// AST order joins the two big tables first; the DP must start from
    /// the tiny one — and wrap the new order in a projection restoring
    /// the original column order.
    #[test]
    fn cost_model_reorders_three_way_join() {
        let w = three_table_wsd();
        let q = Query::table("big1")
            .join(Query::table("big2"), Expr::col("x").eq(Expr::col("y")))
            .join(Query::table("tiny"), Expr::col("y").eq(Expr::col("z")));
        let opt = optimize(&q, &w).unwrap();
        let txt = explain(&opt);
        // the first join executed (deepest in the tree) must involve tiny
        let deepest = txt
            .lines()
            .filter(|l| l.trim_start().starts_with("Scan"))
            .collect::<Vec<_>>();
        assert!(
            txt.contains("Scan tiny"),
            "tiny must appear in the reordered plan:\n{txt}"
        );
        assert_eq!(deepest.len(), 3, "{txt}");
        // schema order restored
        assert_eq!(
            schema_of(&opt, &w).unwrap().names(),
            schema_of(&q, &w).unwrap().names(),
            "{txt}"
        );
        // the reorder keeps world semantics
        let lhs = q.eval(&w).unwrap().to_worldset(100).unwrap();
        let rhs = opt.eval(&w).unwrap().to_worldset(100).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
        // and the chosen plan does not join the two big tables first:
        // the cheapest subtree pairs tiny with a big table.
        let est_ast = {
            let mut stats = WsdStats::new();
            maybms_core::stats::estimate_query(&q, &w, &mut stats).unwrap().rows
        };
        let est_opt = {
            let mut stats = WsdStats::new();
            maybms_core::stats::estimate_query(&opt, &w, &mut stats).unwrap().rows
        };
        assert!((est_ast - est_opt).abs() < 1e-6, "same final cardinality");
    }

    /// Two-input joins keep their AST order — existing EXPLAIN output
    /// must not change shape for simple queries.
    #[test]
    fn two_way_join_keeps_ast_order() {
        let w = two_table_wsd();
        let q = Query::table("R").join(
            Query::table("T"),
            Expr::col("test").eq(Expr::col("tname")),
        );
        let opt = optimize(&q, &w).unwrap();
        let txt = explain(&opt);
        assert!(txt.starts_with("Join on"), "{txt}");
        assert!(!txt.contains("Project"), "no restoration projection:\n{txt}");
    }

    /// Ambiguous column names across inputs disable reordering rather
    /// than producing a wrong attribution.
    #[test]
    fn duplicate_columns_fall_back_to_ast_order() {
        let w = three_table_wsd();
        let q = Query::table("big1")
            .product(Query::table("big1"))
            .product(Query::table("tiny"));
        let opt = optimize(&q, &w).unwrap();
        let lhs = q.eval(&w).unwrap().to_worldset(100).unwrap();
        let rhs = opt.eval(&w).unwrap().to_worldset(100).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn schema_inference() {
        let w = two_table_wsd();
        let q = Query::table("R").product(Query::table("T"));
        let s = schema_of(&q, &w).unwrap();
        assert_eq!(s.len(), 5);
        assert!(schema_of(&Query::table("missing"), &w).is_err());
    }
}
