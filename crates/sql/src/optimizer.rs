//! Plan rewriting: the "optimized query plans produced by MayBMS" of the
//! demo (§1). Rule-based:
//!
//! 1. **Selection splitting & pushdown** — conjuncts of a selection above a
//!    product/join are routed to the side whose schema covers them; mixed
//!    conjuncts become the join condition (turning σ(A×B) into A ⋈ B).
//! 2. **Selection fusion** — σ_p(σ_q(X)) → σ_{p∧q}(X).
//! 3. **Selection through union** — σ(A ∪ B) → σ(A) ∪ σ(B).
//! 4. **Projection fusion** — π(π(X)) keeps only the outer one.
//!
//! Rules are applied to a fixpoint. The optimizer needs the catalog (the
//! WSD's relation schemas) to attribute columns to sides.

use maybms_core::algebra::Query;
use maybms_core::wsd::Wsd;
use maybms_relational::{Expr, Result, Schema};

/// The inferred output schema of a plan node. Delegates to the single
/// implementation in the physical layer ([`maybms_core::exec::schema_of`]),
/// which both the optimizer's pushdown rules and physical-plan
/// compilation share.
pub fn schema_of(q: &Query, wsd: &Wsd) -> Result<Schema> {
    maybms_core::exec::schema_of(q, wsd)
}

/// Optimizes a plan to a fixpoint (bounded rounds for safety).
pub fn optimize(q: &Query, wsd: &Wsd) -> Result<Query> {
    let mut cur = q.clone();
    for _ in 0..16 {
        let (next, changed) = rewrite(&cur, wsd)?;
        cur = next;
        if !changed {
            break;
        }
    }
    Ok(cur)
}

fn rewrite(q: &Query, wsd: &Wsd) -> Result<(Query, bool)> {
    // bottom-up
    let (q, mut changed) = match q {
        Query::Table(_) => (q.clone(), false),
        Query::Select(i, p) => {
            let (i2, c) = rewrite(i, wsd)?;
            (Query::Select(Box::new(i2), p.clone()), c)
        }
        Query::Project(i, cols) => {
            let (i2, c) = rewrite(i, wsd)?;
            (Query::Project(Box::new(i2), cols.clone()), c)
        }
        Query::Product(a, b) => {
            let (a2, ca) = rewrite(a, wsd)?;
            let (b2, cb) = rewrite(b, wsd)?;
            (Query::Product(Box::new(a2), Box::new(b2)), ca || cb)
        }
        Query::Join(a, b, p) => {
            let (a2, ca) = rewrite(a, wsd)?;
            let (b2, cb) = rewrite(b, wsd)?;
            (Query::Join(Box::new(a2), Box::new(b2), p.clone()), ca || cb)
        }
        Query::Union(a, b) => {
            let (a2, ca) = rewrite(a, wsd)?;
            let (b2, cb) = rewrite(b, wsd)?;
            (Query::Union(Box::new(a2), Box::new(b2)), ca || cb)
        }
        Query::Difference(a, b) => {
            let (a2, ca) = rewrite(a, wsd)?;
            let (b2, cb) = rewrite(b, wsd)?;
            (Query::Difference(Box::new(a2), Box::new(b2)), ca || cb)
        }
        Query::Distinct(i) => {
            let (i2, c) = rewrite(i, wsd)?;
            (Query::Distinct(Box::new(i2)), c)
        }
        Query::Rename(i, f, t) => {
            let (i2, c) = rewrite(i, wsd)?;
            (Query::Rename(Box::new(i2), f.clone(), t.clone()), c)
        }
        Query::Qualify(i, p) => {
            let (i2, c) = rewrite(i, wsd)?;
            (Query::Qualify(Box::new(i2), p.clone()), c)
        }
    };

    // top rules
    let rewritten = match &q {
        // rule 2: selection fusion
        Query::Select(inner, p) => {
            if let Query::Select(inner2, p2) = inner.as_ref() {
                Some(Query::Select(
                    inner2.clone(),
                    p2.clone().and(p.clone()),
                ))
            } else if let Query::Union(a, b) = inner.as_ref() {
                // rule 3: through union
                Some(Query::Union(
                    Box::new(Query::Select(a.clone(), p.clone())),
                    Box::new(Query::Select(b.clone(), p.clone())),
                ))
            } else if let Query::Product(a, b) = inner.as_ref() {
                // rule 1: split & push into the product
                Some(push_into_product(a, b, p, wsd, false)?)
            } else if let Query::Join(a, b, jp) = inner.as_ref() {
                // fold extra conjuncts into the join
                let combined = jp.clone().and(p.clone());
                Some(push_into_product(a, b, &combined, wsd, true)?)
            } else {
                None
            }
        }
        // rule 4: projection fusion — π_outer(π_inner(X)) = π_outer(X)
        // (valid because the outer list must be a subset of the inner one)
        Query::Project(inner, cols) => {
            if let Query::Project(inner2, _) = inner.as_ref() {
                Some(Query::Project(inner2.clone(), cols.clone()))
            } else {
                None
            }
        }
        _ => None,
    };

    match rewritten {
        Some(r) => {
            changed = true;
            Ok((r, changed))
        }
        None => Ok((q, changed)),
    }
}

/// Distributes the conjuncts of `pred` over `a × b`: conjuncts referencing
/// only `a`'s columns become σ on `a`, only `b`'s on `b`, and the rest the
/// join condition.
fn push_into_product(
    a: &Query,
    b: &Query,
    pred: &Expr,
    wsd: &Wsd,
    _was_join: bool,
) -> Result<Query> {
    let sa = schema_of(a, wsd)?;
    let sb = schema_of(b, wsd)?;
    let mut left: Vec<Expr> = Vec::new();
    let mut right: Vec<Expr> = Vec::new();
    let mut cross: Vec<Expr> = Vec::new();
    for c in pred.conjuncts() {
        let cols = c.columns();
        // a column that exists on both sides is ambiguous → treat as cross
        let only_a = cols.iter().all(|n| sa.contains(n) && !sb.contains(n));
        let only_b = cols.iter().all(|n| sb.contains(n) && !sa.contains(n));
        if only_a {
            left.push(c.clone());
        } else if only_b {
            right.push(c.clone());
        } else {
            cross.push(c.clone());
        }
    }
    let la: Query = if left.is_empty() {
        a.clone()
    } else {
        Query::Select(Box::new(a.clone()), Expr::conjoin(left))
    };
    let rb: Query = if right.is_empty() {
        b.clone()
    } else {
        Query::Select(Box::new(b.clone()), Expr::conjoin(right))
    };
    Ok(if cross.is_empty() {
        Query::Product(Box::new(la), Box::new(rb))
    } else {
        Query::Join(Box::new(la), Box::new(rb), Expr::conjoin(cross))
    })
}

/// Renders a plan tree for EXPLAIN.
pub fn explain(q: &Query) -> String {
    let mut out = String::new();
    render(q, 0, &mut out);
    out
}

fn render(q: &Query, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match q {
        Query::Table(n) => out.push_str(&format!("{pad}Scan {n}\n")),
        Query::Select(i, p) => {
            out.push_str(&format!("{pad}Select {p}\n"));
            render(i, depth + 1, out);
        }
        Query::Project(i, cols) => {
            out.push_str(&format!("{pad}Project [{}]\n", cols.join(", ")));
            render(i, depth + 1, out);
        }
        Query::Product(a, b) => {
            out.push_str(&format!("{pad}Product\n"));
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Join(a, b, p) => {
            out.push_str(&format!("{pad}Join on {p}\n"));
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Union(a, b) => {
            out.push_str(&format!("{pad}Union\n"));
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Difference(a, b) => {
            out.push_str(&format!("{pad}Difference\n"));
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Distinct(i) => {
            out.push_str(&format!("{pad}Distinct\n"));
            render(i, depth + 1, out);
        }
        Query::Rename(i, f, t) => {
            out.push_str(&format!("{pad}Rename {f} -> {t}\n"));
            render(i, depth + 1, out);
        }
        Query::Qualify(i, p) => {
            out.push_str(&format!("{pad}Qualify {p}\n"));
            render(i, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_core::examples::medical_wsd;
    use maybms_relational::{ColumnType, Schema};
    use maybms_worldset::eval::eval_in_all_worlds;

    fn two_table_wsd() -> Wsd {
        let mut w = medical_wsd();
        w.add_relation(
            "T",
            Schema::new(vec![("tname", ColumnType::Str), ("cost", ColumnType::Int)]),
        )
        .unwrap();
        w.push_certain(
            "T",
            vec![maybms_relational::Value::str("ultrasound"), maybms_relational::Value::Int(120)],
        )
        .unwrap();
        w.push_certain(
            "T",
            vec![maybms_relational::Value::str("TSH"), maybms_relational::Value::Int(40)],
        )
        .unwrap();
        w
    }

    #[test]
    fn pushdown_turns_product_into_join() {
        let w = two_table_wsd();
        let q = Query::table("R")
            .product(Query::table("T"))
            .select(
                Expr::col("test")
                    .eq(Expr::col("tname"))
                    .and(Expr::col("cost").gt(Expr::lit(50i64)))
                    .and(Expr::col("diagnosis").eq(Expr::lit("pregnancy"))),
            );
        let opt = optimize(&q, &w).unwrap();
        let txt = explain(&opt);
        assert!(txt.contains("Join on"), "expected a join, got:\n{txt}");
        assert!(
            txt.contains("Select (diagnosis = 'pregnancy')"),
            "left selection must be pushed down:\n{txt}"
        );
        assert!(
            txt.contains("Select (cost > 50)"),
            "right selection must be pushed down:\n{txt}"
        );
    }

    #[test]
    fn optimized_plan_is_equivalent() {
        let w = two_table_wsd();
        let q = Query::table("R")
            .product(Query::table("T"))
            .select(Expr::col("test").eq(Expr::col("tname")))
            .project(["diagnosis", "cost"]);
        let opt = optimize(&q, &w).unwrap();
        let lhs = q.eval(&w).unwrap().to_worldset(100_000).unwrap();
        let rhs = opt.eval(&w).unwrap().to_worldset(100_000).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
        // and both equal the per-world evaluation
        let oracle =
            eval_in_all_worlds(&w.to_worldset(100_000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&oracle, 1e-9));
    }

    #[test]
    fn selection_fusion_and_union_distribution() {
        let w = medical_wsd();
        let q = Query::table("R")
            .union(Query::table("R"))
            .select(Expr::col("diagnosis").eq(Expr::lit("obesity")))
            .select(Expr::col("test").eq(Expr::lit("BMI")));
        let opt = optimize(&q, &w).unwrap();
        let txt = explain(&opt);
        assert!(txt.starts_with("Union"), "selection should distribute:\n{txt}");
        let lhs = q.eval(&w).unwrap().to_worldset(100_000).unwrap();
        let rhs = opt.eval(&w).unwrap().to_worldset(100_000).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn projection_fusion() {
        let w = medical_wsd();
        let q = Query::table("R")
            .project(["diagnosis", "test"])
            .project(["test"]);
        let opt = optimize(&q, &w).unwrap();
        let txt = explain(&opt);
        assert_eq!(txt.matches("Project").count(), 1, "{txt}");
        let lhs = q.eval(&w).unwrap().to_worldset(1000).unwrap();
        let rhs = opt.eval(&w).unwrap().to_worldset(1000).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn schema_inference() {
        let w = two_table_wsd();
        let q = Query::table("R").product(Query::table("T"));
        let s = schema_of(&q, &w).unwrap();
        assert_eq!(s.len(), 5);
        assert!(schema_of(&Query::table("missing"), &w).is_err());
    }
}
