//! Binary encoding of **mutating** statements — the write-ahead-log
//! record format of the durable session.
//!
//! The WAL is *logical*: each record is one committed DML/DDL statement
//! (`CREATE TABLE`, `DROP TABLE`, `ALTER TABLE … RENAME`, `INSERT`,
//! `REPAIR`), and recovery replays the statements against the last
//! snapshot. Every engine operation is deterministic, so replay
//! reproduces the exact pre-crash decomposition — tuple identifiers,
//! component layout and probabilities included (property-tested in
//! `tests/oracle_properties.rs`).
//!
//! Queries (`SELECT`, `EXPLAIN`, `SHOW TABLES`) never mutate the
//! database and are not loggable; `CHECKPOINT` compacts the log rather
//! than extending it. [`encode_statement`] rejects all of these.
//!
//! The byte format builds on `maybms_storage::bytes` (little-endian,
//! length-prefixed, exact float bit patterns) with a leading format
//! version so old logs fail loudly instead of misparsing.

use maybms_relational::{BinOp, CmpOp, ColumnType, Error, Expr, Result};
use maybms_storage::{Reader, Writer};

use crate::ast::{InsertValue, RepairStmt, Statement};

/// Version of the WAL statement encoding.
pub const WIRE_VERSION: u8 = 1;

const TAG_CREATE: u8 = 1;
const TAG_DROP: u8 = 2;
const TAG_RENAME: u8 = 3;
const TAG_INSERT: u8 = 4;
const TAG_REPAIR_KEY: u8 = 5;
const TAG_REPAIR_FD: u8 = 6;
const TAG_REPAIR_CHECK: u8 = 7;
const TAG_DELETE: u8 = 8;
const TAG_UPDATE: u8 = 9;
/// A commit group: one WAL record holding a whole transaction's
/// statements. Because the WAL frames each record with its own CRC, the
/// group commits (and recovers) atomically — a torn tail drops the whole
/// transaction, never a prefix of it.
const TAG_TXN: u8 = 10;

/// Whether executing `stmt` mutates the database (and must be logged).
/// Transaction control (`BEGIN`/`COMMIT`/`ROLLBACK`) is not itself logged:
/// the log records a committed transaction as one [`encode_commit_group`]
/// record, and an uncommitted one not at all.
pub fn is_mutation(stmt: &Statement) -> bool {
    matches!(
        stmt,
        Statement::CreateTable { .. }
            | Statement::DropTable { .. }
            | Statement::RenameTable { .. }
            | Statement::Insert { .. }
            | Statement::Delete { .. }
            | Statement::Update { .. }
            | Statement::Repair(_)
    )
}

fn column_type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Bool => 0,
        ColumnType::Int => 1,
        ColumnType::Float => 2,
        ColumnType::Str => 3,
    }
}

fn get_column_type(r: &mut Reader) -> Result<ColumnType> {
    Ok(match r.get_u8()? {
        0 => ColumnType::Bool,
        1 => ColumnType::Int,
        2 => ColumnType::Float,
        3 => ColumnType::Str,
        t => return Err(Error::Storage(format!("unknown column type tag {t}"))),
    })
}

fn put_names(w: &mut Writer, names: &[String]) {
    w.put_u32(names.len() as u32);
    for n in names {
        w.put_str(n);
    }
}

fn get_names(r: &mut Reader) -> Result<Vec<String>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(r.get_str()?);
    }
    Ok(out)
}

fn put_expr(w: &mut Writer, e: &Expr) {
    match e {
        Expr::Col(n) => {
            w.put_u8(0);
            w.put_str(n);
        }
        Expr::Lit(v) => {
            w.put_u8(1);
            w.put_value(v);
        }
        Expr::Cmp(op, a, b) => {
            w.put_u8(2);
            w.put_u8(*op as u8);
            put_expr(w, a);
            put_expr(w, b);
        }
        Expr::Bin(op, a, b) => {
            w.put_u8(3);
            w.put_u8(*op as u8);
            put_expr(w, a);
            put_expr(w, b);
        }
        Expr::And(a, b) => {
            w.put_u8(4);
            put_expr(w, a);
            put_expr(w, b);
        }
        Expr::Or(a, b) => {
            w.put_u8(5);
            put_expr(w, a);
            put_expr(w, b);
        }
        Expr::Not(a) => {
            w.put_u8(6);
            put_expr(w, a);
        }
        Expr::IsNull(a) => {
            w.put_u8(7);
            put_expr(w, a);
        }
        Expr::InList(a, vs) => {
            w.put_u8(8);
            put_expr(w, a);
            w.put_u32(vs.len() as u32);
            for v in vs {
                w.put_value(v);
            }
        }
        Expr::Param(i) => {
            // never reaches the WAL (sessions bind parameters before
            // executing, and only executed statements are logged), but the
            // encoding is total so prepared templates round-trip too
            w.put_u8(9);
            w.put_u32(*i);
        }
    }
}

fn get_cmp_op(r: &mut Reader) -> Result<CmpOp> {
    Ok(match r.get_u8()? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(Error::Storage(format!("unknown comparison tag {t}"))),
    })
}

fn get_bin_op(r: &mut Reader) -> Result<BinOp> {
    Ok(match r.get_u8()? {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        t => return Err(Error::Storage(format!("unknown arithmetic tag {t}"))),
    })
}

fn get_expr(r: &mut Reader) -> Result<Expr> {
    Ok(match r.get_u8()? {
        0 => Expr::Col(r.get_str()?),
        1 => Expr::Lit(r.get_value()?),
        2 => {
            let op = get_cmp_op(r)?;
            Expr::Cmp(op, Box::new(get_expr(r)?), Box::new(get_expr(r)?))
        }
        3 => {
            let op = get_bin_op(r)?;
            Expr::Bin(op, Box::new(get_expr(r)?), Box::new(get_expr(r)?))
        }
        4 => Expr::And(Box::new(get_expr(r)?), Box::new(get_expr(r)?)),
        5 => Expr::Or(Box::new(get_expr(r)?), Box::new(get_expr(r)?)),
        6 => Expr::Not(Box::new(get_expr(r)?)),
        7 => Expr::IsNull(Box::new(get_expr(r)?)),
        8 => {
            let a = Box::new(get_expr(r)?);
            let n = r.get_u32()? as usize;
            let mut vs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                vs.push(r.get_value()?);
            }
            Expr::InList(a, vs)
        }
        9 => Expr::Param(r.get_u32()?),
        t => return Err(Error::Storage(format!("unknown expression tag {t}"))),
    })
}

fn put_insert_value(w: &mut Writer, v: &InsertValue) {
    match v {
        InsertValue::Certain(v) => {
            w.put_u8(0);
            w.put_value(v);
        }
        InsertValue::Uniform(vs) => {
            w.put_u8(1);
            w.put_u32(vs.len() as u32);
            for v in vs {
                w.put_value(v);
            }
        }
        InsertValue::Weighted(ws) => {
            w.put_u8(2);
            w.put_u32(ws.len() as u32);
            for (v, p) in ws {
                w.put_value(v);
                w.put_f64(*p);
            }
        }
        InsertValue::Param(i) => {
            w.put_u8(3);
            w.put_u32(*i);
        }
    }
}

fn get_insert_value(r: &mut Reader) -> Result<InsertValue> {
    Ok(match r.get_u8()? {
        0 => InsertValue::Certain(r.get_value()?),
        1 => {
            let n = r.get_u32()? as usize;
            let mut vs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                vs.push(r.get_value()?);
            }
            InsertValue::Uniform(vs)
        }
        2 => {
            let n = r.get_u32()? as usize;
            let mut ws = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let v = r.get_value()?;
                let p = r.get_f64()?;
                ws.push((v, p));
            }
            InsertValue::Weighted(ws)
        }
        3 => InsertValue::Param(r.get_u32()?),
        t => return Err(Error::Storage(format!("unknown insert value tag {t}"))),
    })
}

/// Encodes a mutating statement as one WAL record payload. Non-mutating
/// statements are rejected — they have no business in the log.
pub fn encode_statement(stmt: &Statement) -> Result<Vec<u8>> {
    let mut w = Writer::new();
    w.put_u8(WIRE_VERSION);
    match stmt {
        Statement::CreateTable { name, columns } => {
            w.put_u8(TAG_CREATE);
            w.put_str(name);
            w.put_u32(columns.len() as u32);
            for (n, ty) in columns {
                w.put_str(n);
                w.put_u8(column_type_tag(*ty));
            }
        }
        Statement::DropTable { name } => {
            w.put_u8(TAG_DROP);
            w.put_str(name);
        }
        Statement::RenameTable { from, to } => {
            w.put_u8(TAG_RENAME);
            w.put_str(from);
            w.put_str(to);
        }
        Statement::Insert { table, rows } => {
            w.put_u8(TAG_INSERT);
            w.put_str(table);
            w.put_u32(rows.len() as u32);
            for row in rows {
                w.put_u32(row.len() as u32);
                for v in row {
                    put_insert_value(&mut w, v);
                }
            }
        }
        Statement::Repair(RepairStmt::Key { table, columns }) => {
            w.put_u8(TAG_REPAIR_KEY);
            w.put_str(table);
            put_names(&mut w, columns);
        }
        Statement::Repair(RepairStmt::Fd { table, lhs, rhs }) => {
            w.put_u8(TAG_REPAIR_FD);
            w.put_str(table);
            put_names(&mut w, lhs);
            put_names(&mut w, rhs);
        }
        Statement::Repair(RepairStmt::Check { table, pred }) => {
            w.put_u8(TAG_REPAIR_CHECK);
            w.put_str(table);
            put_expr(&mut w, pred);
        }
        Statement::Delete { table, pred } => {
            w.put_u8(TAG_DELETE);
            w.put_str(table);
            match pred {
                None => w.put_u8(0),
                Some(p) => {
                    w.put_u8(1);
                    put_expr(&mut w, p);
                }
            }
        }
        Statement::Update { table, set, pred } => {
            w.put_u8(TAG_UPDATE);
            w.put_str(table);
            w.put_u32(set.len() as u32);
            for (col, v) in set {
                w.put_str(col);
                put_insert_value(&mut w, v);
            }
            match pred {
                None => w.put_u8(0),
                Some(p) => {
                    w.put_u8(1);
                    put_expr(&mut w, p);
                }
            }
        }
        other => {
            return Err(Error::Storage(format!(
                "statement is not loggable (not a mutation): {other:?}"
            )))
        }
    }
    Ok(w.into_inner())
}

/// Decodes one WAL record payload back into a statement.
pub fn decode_statement(bytes: &[u8]) -> Result<Statement> {
    let mut r = Reader::new(bytes);
    let version = r.get_u8()?;
    if version != WIRE_VERSION {
        return Err(Error::Storage(format!(
            "unsupported WAL statement version {version} (this build reads {WIRE_VERSION})"
        )));
    }
    let stmt = match r.get_u8()? {
        TAG_CREATE => {
            let name = r.get_str()?;
            let n = r.get_u32()? as usize;
            let mut columns = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let cname = r.get_str()?;
                let ty = get_column_type(&mut r)?;
                columns.push((cname, ty));
            }
            Statement::CreateTable { name, columns }
        }
        TAG_DROP => Statement::DropTable { name: r.get_str()? },
        TAG_RENAME => Statement::RenameTable { from: r.get_str()?, to: r.get_str()? },
        TAG_INSERT => {
            let table = r.get_str()?;
            let nrows = r.get_u32()? as usize;
            let mut rows = Vec::with_capacity(nrows.min(1 << 16));
            for _ in 0..nrows {
                let ncells = r.get_u32()? as usize;
                let mut row = Vec::with_capacity(ncells.min(1 << 16));
                for _ in 0..ncells {
                    row.push(get_insert_value(&mut r)?);
                }
                rows.push(row);
            }
            Statement::Insert { table, rows }
        }
        TAG_REPAIR_KEY => Statement::Repair(RepairStmt::Key {
            table: r.get_str()?,
            columns: get_names(&mut r)?,
        }),
        TAG_REPAIR_FD => {
            let table = r.get_str()?;
            let lhs = get_names(&mut r)?;
            let rhs = get_names(&mut r)?;
            Statement::Repair(RepairStmt::Fd { table, lhs, rhs })
        }
        TAG_REPAIR_CHECK => {
            let table = r.get_str()?;
            let pred = get_expr(&mut r)?;
            Statement::Repair(RepairStmt::Check { table, pred })
        }
        TAG_DELETE => {
            let table = r.get_str()?;
            let pred = get_optional_expr(&mut r)?;
            Statement::Delete { table, pred }
        }
        TAG_UPDATE => {
            let table = r.get_str()?;
            let n = r.get_u32()? as usize;
            let mut set = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let col = r.get_str()?;
                let v = get_insert_value(&mut r)?;
                set.push((col, v));
            }
            let pred = get_optional_expr(&mut r)?;
            Statement::Update { table, set, pred }
        }
        t => return Err(Error::Storage(format!("unknown statement tag {t}"))),
    };
    r.expect_end()?;
    Ok(stmt)
}

fn get_optional_expr(r: &mut Reader) -> Result<Option<Expr>> {
    Ok(match r.get_u8()? {
        0 => None,
        1 => Some(get_expr(r)?),
        t => return Err(Error::Storage(format!("unknown optional-expression tag {t}"))),
    })
}

/// Frames a committed transaction's already-encoded statement payloads as
/// ONE WAL record: the whole group shares a single CRC frame and a single
/// fsync, and recovery replays it all or not at all.
pub fn encode_commit_group(records: &[Vec<u8>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(WIRE_VERSION);
    w.put_u8(TAG_TXN);
    w.put_u32(records.len() as u32);
    for rec in records {
        w.put_u32(rec.len() as u32);
        w.put_bytes(rec);
    }
    w.into_inner()
}

/// Decodes one WAL record payload into the statements it commits: a
/// single statement, or every statement of a commit group (in execution
/// order). This is the recovery entry point — [`decode_statement`] is the
/// single-statement special case.
pub fn decode_wal_record(bytes: &[u8]) -> Result<Vec<Statement>> {
    let mut r = Reader::new(bytes);
    let version = r.get_u8()?;
    if version != WIRE_VERSION {
        return Err(Error::Storage(format!(
            "unsupported WAL statement version {version} (this build reads {WIRE_VERSION})"
        )));
    }
    if r.get_u8()? != TAG_TXN {
        return Ok(vec![decode_statement(bytes)?]);
    }
    let n = r.get_u32()? as usize;
    let mut stmts = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let len = r.get_len()?;
        let payload = r.get_bytes(len)?;
        stmts.push(decode_statement(payload)?);
    }
    r.expect_end()?;
    Ok(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(sql: &str) {
        let stmt = parse(sql).unwrap();
        assert!(is_mutation(&stmt), "{sql} should be a mutation");
        let bytes = encode_statement(&stmt).unwrap();
        let back = decode_statement(&bytes).unwrap();
        assert_eq!(stmt, back, "wire round trip of {sql}");
    }

    #[test]
    fn mutations_round_trip() {
        round_trip("CREATE TABLE r (a INT, b TEXT, c FLOAT, d BOOL)");
        round_trip("DROP TABLE r");
        round_trip("ALTER TABLE a RENAME TO b");
        round_trip("INSERT INTO r VALUES (1, 'x', 1.5, TRUE)");
        round_trip("INSERT INTO r VALUES ({1, 2}, {'a': 0.4, 'b': 0.6}, NULL, FALSE), (-7, 'y', -0.25, TRUE)");
        round_trip("REPAIR KEY person(ssn, name)");
        round_trip("REPAIR FD person: zip -> city, state");
        round_trip("REPAIR CHECK person: age < 150 AND age >= 0 OR name IN ('x','y') AND age IS NOT NULL");
        round_trip("REPAIR CHECK person: NOT (age * 2 + 1 % 3 / 4 - 5 = 0)");
        round_trip("DELETE FROM r");
        round_trip("DELETE FROM r WHERE a = 1 AND b IN ('x', 'y')");
        round_trip("UPDATE r SET a = 5, b = 'x' WHERE a < 3 OR b IS NULL");
        round_trip("UPDATE r SET a = -1");
    }

    #[test]
    fn prepared_templates_round_trip() {
        // parameterized statements never reach the WAL, but the encoding
        // is total: templates survive the wire bit-for-bit
        round_trip("INSERT INTO r VALUES (?, 2), (3, ?)");
        round_trip("UPDATE r SET a = ? WHERE b = ?");
        round_trip("DELETE FROM r WHERE a = ? AND b > ?");
    }

    #[test]
    fn transaction_control_is_not_loggable() {
        for sql in ["BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT sp", "ROLLBACK TO sp"] {
            let stmt = parse(sql).unwrap();
            assert!(!is_mutation(&stmt), "{sql}");
            assert!(encode_statement(&stmt).is_err(), "{sql}");
        }
    }

    #[test]
    fn commit_groups_frame_whole_transactions() {
        let stmts: Vec<Statement> = [
            "CREATE TABLE t (x INT)",
            "INSERT INTO t VALUES (1), ({2: 0.5, 3: 0.5})",
            "DELETE FROM t WHERE x = 1",
            "UPDATE t SET x = 9 WHERE x = 2",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        let records: Vec<Vec<u8>> =
            stmts.iter().map(|s| encode_statement(s).unwrap()).collect();
        let group = encode_commit_group(&records);
        assert_eq!(decode_wal_record(&group).unwrap(), stmts);
        // an empty transaction frames to an empty group
        assert_eq!(decode_wal_record(&encode_commit_group(&[])).unwrap(), Vec::<Statement>::new());
        // single-statement records decode through the same entry point
        assert_eq!(decode_wal_record(&records[0]).unwrap(), vec![stmts[0].clone()]);
        // truncating anywhere inside the group is an error, never a prefix
        for cut in 0..group.len() {
            assert!(decode_wal_record(&group[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = group.clone();
        trailing.push(0);
        assert!(decode_wal_record(&trailing).is_err());
    }

    #[test]
    fn queries_are_not_loggable() {
        for sql in ["SELECT a FROM r", "SHOW TABLES", "EXPLAIN SELECT a FROM r", "CHECKPOINT"] {
            let stmt = parse(sql).unwrap();
            assert!(!is_mutation(&stmt), "{sql}");
            assert!(encode_statement(&stmt).is_err(), "{sql}");
        }
    }

    #[test]
    fn corrupt_records_error() {
        let stmt = parse("INSERT INTO r VALUES (1)").unwrap();
        let bytes = encode_statement(&stmt).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode_statement(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(decode_statement(&wrong_version).is_err());
        let mut trailing = bytes.clone();
        trailing.push(7);
        assert!(decode_statement(&trailing).is_err());
    }

    #[test]
    fn weights_survive_bit_exactly() {
        let stmt = parse("INSERT INTO r VALUES ({1: 0.1, 2: 0.9})").unwrap();
        let back = decode_statement(&encode_statement(&stmt).unwrap()).unwrap();
        let Statement::Insert { rows, .. } = back else { panic!() };
        let InsertValue::Weighted(ws) = &rows[0][0] else { panic!() };
        assert_eq!(ws[0].1.to_bits(), 0.1f64.to_bits());
        assert_eq!(ws[1].1.to_bits(), 0.9f64.to_bits());
    }
}
