//! Lowering parsed statements to algebra plans over the decomposition.

use maybms_core::algebra::Query;
use maybms_relational::{Error, Result};

use crate::ast::{SelectItem, SelectStmt, SetOp};

/// Lowers a SELECT statement (ignoring its world mode and `PROB()` flag,
/// which are post-processing concerns of the session) to an algebra query.
pub fn lower_select(stmt: &SelectStmt) -> Result<Query> {
    // FROM: product of (possibly qualified) tables
    if stmt.from.is_empty() {
        return Err(Error::InvalidExpr("empty FROM clause".into()));
    }
    let mut from_iter = stmt.from.iter();
    let first = from_iter.next().expect("nonempty"); // maybms-lint: allow(no-panic-in-prod) -- the parser rejects a SELECT without FROM on this path, so the list is nonempty
    let mut q = table_ref(first);
    for t in from_iter {
        q = q.product(table_ref(t));
    }

    // WHERE
    if let Some(pred) = &stmt.where_clause {
        q = q.select(pred.clone());
    }

    // SELECT list
    let star = stmt.items.iter().any(|i| matches!(i, SelectItem::Star));
    if !star && !stmt.items.is_empty() {
        let cols: Vec<String> = stmt
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Column(c) => c.clone(),
                SelectItem::Star => unreachable!("filtered above"), // maybms-lint: allow(no-panic-in-prod) -- Star items were expanded before this loop
            })
            .collect();
        q = q.project(cols);
    }

    if stmt.distinct {
        q = q.distinct();
    }

    // set operations
    if let Some((op, rhs)) = &stmt.set_op {
        let rhs_q = lower_select(rhs)?;
        q = match op {
            SetOp::Union => q.union(rhs_q),
            SetOp::Except => q.difference(rhs_q),
        };
    }
    Ok(q)
}

fn table_ref(t: &crate::ast::TableRef) -> Query {
    let base = Query::table(&t.name);
    match &t.alias {
        Some(a) => base.qualify(a),
        None => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::ast::Statement;

    fn lower(sql: &str) -> Query {
        let Statement::Select(s) = parse(sql).unwrap() else { panic!() };
        lower_select(&s).unwrap()
    }

    #[test]
    fn select_project_shape() {
        let q = lower("SELECT test FROM R WHERE diagnosis = 'pregnancy'");
        let Query::Project(inner, cols) = q else { panic!("got {q:?}") };
        assert_eq!(cols, vec!["test"]);
        assert!(matches!(*inner, Query::Select(..)));
    }

    #[test]
    fn multi_table_from_becomes_product() {
        let q = lower("SELECT * FROM r a, s b");
        assert!(matches!(q, Query::Product(..)));
    }

    #[test]
    fn union_and_except() {
        let q = lower("SELECT a FROM r UNION SELECT a FROM s");
        assert!(matches!(q, Query::Union(..)));
        let q2 = lower("SELECT a FROM r EXCEPT SELECT a FROM s");
        assert!(matches!(q2, Query::Difference(..)));
    }

    #[test]
    fn distinct_wraps() {
        let q = lower("SELECT DISTINCT a FROM r");
        assert!(matches!(q, Query::Distinct(..)));
    }
}
