//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build container has no network access, so instead of the crates.io
//! `rand` we vendor an API-compatible sliver: `StdRng` (an xoshiro256**
//! generator), `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_bool` and `gen_range` over the integer/float range shapes
//! the census generators call. Deterministic given a seed, which is all
//! the workloads require; it is NOT the same stream as the real `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of `rand::Rng` the workspace calls.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types `gen::<T>()` can produce.
pub trait Standard {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range shapes accepted by `gen_range`.
pub trait SampleRange {
    type Output;
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "gen_range over an empty range");
    // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
    // far below anything the statistical tests can observe.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over an empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range over an empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
int_ranges!(i64, u64, i32, u32, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded through splitmix64 — a solid general-purpose
    /// generator standing in for the real `StdRng` (ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3i64..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
            let f = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.gen_range(0i64..4) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }
}
