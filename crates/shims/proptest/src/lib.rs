//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build container has no network access, so this crate provides an
//! API-compatible sliver of proptest: composable random-value strategies
//! (`Just`, ranges, tuples, `prop_oneof!`, `prop::collection`, simple
//! `"[a-c]{0,3}"` string patterns, `prop_recursive`) and the `proptest!` /
//! `prop_assert*` macros. Cases are generated from a per-test deterministic
//! seed; there is **no shrinking** — a failing case prints its index and
//! seed so it can be replayed by rerunning the test.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic xorshift64* generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(seed | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// FNV-1a over a test name: the per-test seed.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy so heterogeneous strategies can be unioned.
    fn boxed(self) -> Strat<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        Strat::new(move |rng| s.generate(rng))
    }

    fn prop_map<O: 'static, F>(self, f: F) -> Strat<O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let s = self;
        Strat::new(move |rng| f(s.generate(rng)))
    }

    /// Recursive strategies, unrolled to `depth` levels. `_size` and
    /// `_branch` are accepted for API compatibility and ignored.
    fn prop_recursive<F>(self, depth: u32, _size: u32, _branch: u32, f: F) -> Strat<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(Strat<Self::Value>) -> Strat<Self::Value>,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur);
            cur = Strat::union(vec![leaf.clone(), deeper]);
        }
        cur
    }
}

/// The type-erased strategy every combinator produces.
pub struct Strat<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for Strat<T> {
    fn clone(&self) -> Self {
        Strat { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Strat<T> {
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Strat<T> {
        Strat { f: Rc::new(f) }
    }

    /// Picks one of the given strategies uniformly per generated value.
    pub fn union(arms: Vec<Strat<T>>) -> Strat<T> {
        assert!(!arms.is_empty(), "prop_oneof! of zero strategies");
        Strat::new(move |rng| {
            let i = rng.below(arms.len() as u64) as usize;
            arms[i].generate(rng)
        })
    }
}

impl<T> Strategy for Strat<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over an empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_strategies!(i64, u64, i32, u32, usize);

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// String patterns of the shape `[a-cx]{m,n}` (a character class with a
/// repetition count), the only regex form the workspace's tests use.
/// Anything else is treated as a literal string.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_class_pattern(p: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = p.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars: Vec<char> = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i], cs[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    Some((chars, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

// ---------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary() -> Strat<Self>;
}

pub fn any<T: Arbitrary>() -> Strat<T> {
    T::arbitrary()
}

impl Arbitrary for bool {
    fn arbitrary() -> Strat<bool> {
        Strat::new(|rng| rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for u64 {
    fn arbitrary() -> Strat<u64> {
        Strat::new(|rng| rng.next_u64())
    }
}

impl Arbitrary for i64 {
    fn arbitrary() -> Strat<i64> {
        Strat::new(|rng| rng.next_u64() as i64)
    }
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

pub mod prop {
    pub mod collection {
        use super::super::{Strat, Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::Range;

        pub fn vec<S>(elem: S, size: Range<usize>) -> Strat<Vec<S::Value>>
        where
            S: Strategy + 'static,
        {
            assert!(size.start < size.end, "vec strategy over an empty size range");
            Strat::new(move |rng: &mut TestRng| {
                let span = (size.end - size.start) as u64;
                let n = size.start + rng.below(span) as usize;
                (0..n).map(|_| elem.generate(rng)).collect()
            })
        }

        pub fn btree_set<S>(elem: S, size: Range<usize>) -> Strat<BTreeSet<S::Value>>
        where
            S: Strategy + 'static,
            S::Value: Ord,
        {
            assert!(size.start < size.end, "btree_set strategy over an empty size range");
            Strat::new(move |rng: &mut TestRng| {
                let span = (size.end - size.start) as u64;
                let n = size.start + rng.below(span) as usize;
                let mut out = BTreeSet::new();
                // Small domains may not admit n distinct values; cap tries.
                for _ in 0..(n * 20).max(20) {
                    if out.len() >= n {
                        break;
                    }
                    out.insert(elem.generate(rng));
                }
                if out.is_empty() && n > 0 {
                    out.insert(elem.generate(rng));
                }
                out
            })
        }
    }
}

// Re-exported so `use proptest::prelude::*` + `prop::collection::vec` works.
pub use self::prop as collection_ns;

// ---------------------------------------------------------------------
// Config, errors, macros
// ---------------------------------------------------------------------

/// Run configuration; only `cases` is interpreted. `max_shrink_iters`
/// exists for struct-update compatibility with the real API (the shim
/// never shrinks).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128, max_shrink_iters: 0 }
    }
}

/// A failed property assertion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::TestRng::from_seed(seed);
                #[allow(unused_variables)]
                for case in 0..cfg.cases {
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case, cfg.cases, seed, e
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($a), stringify!($b), __a, __b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Strat::union(vec![$($crate::Strategy::boxed($s)),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strat, Strategy, TestCaseError, TestRng,
    };
    /// `BoxedStrategy<T>` is an alias of the shim's one strategy type.
    pub type BoxedStrategy<T> = crate::Strat<T>;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = TestRng::from_seed(1);
        let s = (0i64..4).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..8).contains(&v));
        }
        let t = ("[a-c]{0,3}", Just(7u64), 0i64..2);
        for _ in 0..100 {
            let (s, j, i) = t.generate(&mut rng);
            assert!(s.len() <= 3 && s.chars().all(|c| ('a'..='c').contains(&c)));
            assert_eq!(j, 7);
            assert!((0..2).contains(&i));
        }
        let v = prop::collection::vec(0i64..3, 1..4);
        for _ in 0..50 {
            let xs = v.generate(&mut rng);
            assert!((1..4).contains(&xs.len()));
        }
        let bs = prop::collection::btree_set(0i64..4, 1..3);
        for _ in 0..50 {
            let s: BTreeSet<i64> = bs.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 2);
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        let mut rng = TestRng::from_seed(9);
        let leaf = Just(0u64);
        let rec = leaf.prop_recursive(3, 12, 2, |inner| {
            prop_oneof![inner.clone().prop_map(|v| v + 1), inner.prop_map(|v| v + 2)]
        });
        for _ in 0..200 {
            assert!(rec.generate(&mut rng) <= 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn macro_binds_args(a in 0i64..10, b in any::<bool>()) {
            prop_assert!((0..10).contains(&a));
            prop_assert_eq!(b & !b, false, "contradiction is always false, got {}", b);
        }
    }
}
