//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion`, `BenchmarkId`, benchmark groups with
//! `sample_size` / `bench_with_input` / `bench_function`, and the
//! `criterion_group!` / `criterion_main!` macros. Bench targets must set
//! `harness = false` (as with real criterion).
//!
//! Beyond timing to stdout, every bench run writes a machine-readable
//! summary to `BENCH_<experiment>.json` in the workspace root (or
//! `$MAYBMS_BENCH_DIR`), so successive PRs have a recorded perf
//! trajectory. `<experiment>` is the leading `eN` of the bench target
//! name, or the whole name when it has no such prefix. Set
//! `MAYBMS_BENCH_FAST=1` to cap measurement time for smoke runs.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

#[derive(Debug, Clone)]
struct Measurement {
    id: String,
    mean_ns: f64,
    iters: u64,
}

/// The top-level benchmark driver.
pub struct Criterion {
    results: Vec<Measurement>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { results: Vec::new(), sample_size: 10 }
    }
}

fn fast_mode() -> bool {
    std::env::var("MAYBMS_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), sample_size: 10 }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let m = run_bench(name.to_string(), self.sample_size, |b| f(b));
        self.results.push(m);
        self
    }

    /// Writes `BENCH_<experiment>.json` and prints a summary table.
    pub fn finalize(&self) {
        let target = bench_target_name();
        let experiment = target
            .split('_')
            .next()
            .filter(|p| p.len() >= 2 && p.starts_with('e') && p[1..].chars().all(|c| c.is_ascii_digit()))
            .unwrap_or(&target)
            .to_string();
        let dir = std::env::var("MAYBMS_BENCH_DIR").unwrap_or_else(|_| {
            // CARGO_MANIFEST_DIR points at crates/bench; the workspace root
            // is two levels up.
            match std::env::var("CARGO_MANIFEST_DIR") {
                Ok(m) => format!("{m}/../.."),
                Err(_) => ".".to_string(),
            }
        });
        let path = format!("{dir}/BENCH_{experiment}.json");
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"bench\": {:?},\n", target));
        // worker-count sweeps (E6) are meaningless without knowing how
        // many CPUs the measuring machine actually had
        json.push_str(&format!("  \"cpus\": {cpus},\n"));
        json.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"id\": {:?}, \"mean_ns\": {:.1}, \"iters\": {}}}{}\n",
                m.id,
                m.mean_ns,
                m.iters,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn bench_target_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .map(|stem| match stem.rsplit_once('-') {
            // cargo appends a metadata hash: `e1_storage-0a1b…`.
            Some((name, hash)) if hash.chars().all(|c| c.is_ascii_hexdigit()) => name.to_string(),
            _ => stem,
        })
        .unwrap_or_else(|| "bench".to_string())
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let m = run_bench(full, self.sample_size, |b| f(b, input));
        self.c.results.push(m);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let m = run_bench(full, self.sample_size, |b| f(b));
        self.c.results.push(m);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: one call, also used to size the measurement loop.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));

        let budget = if fast_mode() {
            Duration::from_millis(80)
        } else {
            Duration::from_millis(400)
        };
        let per_sample = (budget.as_nanos() / (self.sample_size as u128).max(1)).max(1);
        let iters_per_sample = (per_sample / once.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            total += t.elapsed();
            iters += iters_per_sample;
            if total > budget * 2 {
                break;
            }
        }
        self.total = total;
        self.iters = iters;
    }

    /// Criterion's escape hatch for payloads that must time themselves:
    /// the closure runs `iters` iterations and returns the measured
    /// duration (e.g. when the wall-clock of interest excludes setup, or
    /// was collected by an interleaved A/B harness).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let once = f(1).max(Duration::from_nanos(50));

        let budget = if fast_mode() {
            Duration::from_millis(80)
        } else {
            Duration::from_millis(400)
        };
        let per_sample = (budget.as_nanos() / (self.sample_size as u128).max(1)).max(1);
        let iters_per_sample = (per_sample / once.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            total += f(iters_per_sample);
            iters += iters_per_sample;
            if total > budget * 2 {
                break;
            }
        }
        self.total = total;
        self.iters = iters;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: String, sample_size: usize, mut f: F) -> Measurement {
    let mut b = Bencher { sample_size, total: Duration::ZERO, iters: 0 };
    f(&mut b);
    let mean_ns = if b.iters > 0 {
        b.total.as_nanos() as f64 / b.iters as f64
    } else {
        0.0
    };
    println!("bench {id}: mean {}  ({} iters)", fmt_ns(mean_ns), b.iters);
    Measurement { id, mean_ns, iters: b.iters }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Re-export so call sites can use `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}
