//! Integration: census data survives CSV export/import, and the loaded
//! data decomposes identically — the "load a 3GB extract from disk" path
//! of the paper's setup, at test scale.

use maybms_census::{census_schema, generate, inject, to_wsd, NoiseSpec};
use maybms_relational::csv::{from_csv, to_csv};

#[test]
fn census_csv_round_trip() {
    let base = generate(250, 77);
    let text = to_csv(&base);
    // header + one line per record
    assert_eq!(text.lines().count(), 251);
    let back = from_csv(census_schema(), &text).expect("parse");
    assert_eq!(back, base);
}

#[test]
fn loaded_census_decomposes_identically() {
    let base = generate(60, 5);
    let reloaded = from_csv(census_schema(), &to_csv(&base)).expect("parse");
    let spec = NoiseSpec { rate: 0.01, max_width: 3, weighted: false, seed: 9 };
    let w1 = to_wsd(&inject(&base, spec).expect("noise")).expect("wsd");
    let w2 = to_wsd(&inject(&reloaded, spec).expect("noise")).expect("wsd");
    // deterministic: identical inputs + seed give identical decompositions
    assert_eq!(w1.world_count(), w2.world_count());
    assert_eq!(w1.stats(), w2.stats());
    assert_eq!(w1.size_bytes(), w2.size_bytes());
}

#[test]
fn header_is_the_fifty_ipums_columns() {
    let base = generate(1, 0);
    let text = to_csv(&base);
    let header = text.lines().next().expect("header");
    assert_eq!(header.split(',').count(), 50);
    assert!(header.starts_with("serial,pernum"));
    assert!(header.ends_with("marst"));
}
