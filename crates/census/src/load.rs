//! Loading census data into the different representations.

use maybms_core::wsd::Wsd;
use maybms_relational::{Relation, Result};
use maybms_worldset::OrSetRelation;

use crate::constraints::CENSUS_REL;
use crate::schema::census_schema;

/// Builds the WSD of an or-set census relation: each uncertain field
/// becomes its own single-field component (the maximal decomposition).
pub fn to_wsd(os: &OrSetRelation) -> Result<Wsd> {
    let mut wsd = Wsd::new();
    wsd.add_relation(CENSUS_REL, census_schema())?;
    for row in os.rows() {
        wsd.push_orset(CENSUS_REL, row.to_vec())?;
    }
    Ok(wsd)
}

/// Loads a certain relation as a (trivial, one-world) WSD — the baseline
/// "single world" database of E3.
pub fn certain_to_wsd(r: &Relation) -> Result<Wsd> {
    let mut wsd = Wsd::new();
    wsd.add_relation(CENSUS_REL, census_schema())?;
    for t in r.iter() {
        wsd.push_certain(CENSUS_REL, t.values().to_vec())?;
    }
    Ok(wsd)
}

/// End-to-end convenience: generate, add noise, decompose.
pub fn noisy_census_wsd(n: usize, spec: crate::noise::NoiseSpec, seed: u64) -> Result<Wsd> {
    let base = crate::generate::generate(n, seed);
    let os = crate::noise::inject(&base, spec)?;
    to_wsd(&os)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::noise::{inject, NoiseSpec};

    #[test]
    fn wsd_components_match_uncertain_fields() {
        let base = generate(100, 1);
        let os = inject(&base, NoiseSpec { rate: 0.02, ..Default::default() }).unwrap();
        let wsd = to_wsd(&os).unwrap();
        wsd.validate().unwrap();
        assert_eq!(wsd.num_components(), os.uncertain_fields());
        // world counts agree
        assert!((wsd.world_count().log2() - os.world_count_log2()).abs() < 1e-6);
    }

    #[test]
    fn small_noisy_wsd_enumerates_to_orset_expansion() {
        let base = generate(4, 9);
        let os = inject(&base, NoiseSpec { rate: 0.02, max_width: 2, ..Default::default() })
            .unwrap();
        let wsd = to_wsd(&os).unwrap();
        let lhs = wsd.to_worldset(1 << 16).unwrap();
        let rhs =
            maybms_worldset::enumerate::expand(&os, CENSUS_REL, Default::default()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn certain_wsd_has_one_world() {
        let base = generate(20, 2);
        let wsd = certain_to_wsd(&base).unwrap();
        assert_eq!(wsd.world_count().to_u64(), Some(1));
        assert_eq!(wsd.num_components(), 0);
    }
}
