//! Loading census data into the different representations.

use maybms_core::wsd::Wsd;
use maybms_relational::{Relation, Result, Value};
use maybms_sql::ast::{InsertValue, Statement};
use maybms_sql::{Session, SessionResult};
use maybms_worldset::{OrSetCell, OrSetRelation};

use crate::constraints::CENSUS_REL;
use crate::schema::census_schema;

/// Builds the WSD of an or-set census relation: each uncertain field
/// becomes its own single-field component (the maximal decomposition).
pub fn to_wsd(os: &OrSetRelation) -> Result<Wsd> {
    let mut wsd = Wsd::new();
    wsd.add_relation(CENSUS_REL, census_schema())?;
    for row in os.rows() {
        wsd.push_orset(CENSUS_REL, row.to_vec())?;
    }
    Ok(wsd)
}

/// Loads a certain relation as a (trivial, one-world) WSD — the baseline
/// "single world" database of E3.
pub fn certain_to_wsd(r: &Relation) -> Result<Wsd> {
    let mut wsd = Wsd::new();
    wsd.add_relation(CENSUS_REL, census_schema())?;
    for t in r.iter() {
        wsd.push_certain(CENSUS_REL, t.values().to_vec())?;
    }
    Ok(wsd)
}

/// End-to-end convenience: generate, add noise, decompose.
pub fn noisy_census_wsd(n: usize, spec: crate::noise::NoiseSpec, seed: u64) -> Result<Wsd> {
    let base = crate::generate::generate(n, seed);
    let os = crate::noise::inject(&base, spec)?;
    to_wsd(&os)
}

/// One INSERT statement for an or-set census row — no SQL text involved.
pub fn row_statement(row: &[OrSetCell]) -> Statement {
    let vals: Vec<InsertValue> = row
        .iter()
        .map(|cell| match cell.certain_value() {
            Some(v) => InsertValue::Certain(v.clone()),
            None => InsertValue::Weighted(cell.alternatives().to_vec()),
        })
        .collect();
    Statement::Insert { table: CENSUS_REL.into(), rows: vec![vals] }
}

/// The SQL bulk loader: creates the census table in `session` and loads
/// `os` with **prepared statements + one transaction per `batch` rows**.
///
/// Certain rows (the vast majority of the workload) go through a single
/// prepared `INSERT … VALUES (?, …, ?)` — parsed once, bound per row;
/// rows with or-set cells are constructed as statements directly (their
/// alternative lists vary in width, which `?` scalars cannot express).
/// Each batch commits as one WAL group, so a durable session pays one
/// fsync per batch instead of one per row — this replaced the old
/// re-parse-per-row autocommit loop (the before/after is recorded in
/// `BENCH_e7.json` under `census_load/…`).
pub fn load_into_session(
    session: &mut Session,
    os: &OrSetRelation,
    batch: usize,
) -> SessionResult<()> {
    let columns = census_schema()
        .columns()
        .iter()
        .map(|c| (c.name.clone(), c.ty))
        .collect();
    session.run(&Statement::CreateTable { name: CENSUS_REL.into(), columns })?;
    let placeholders = vec!["?"; census_schema().len()].join(", ");
    let prepared =
        session.prepare(&format!("INSERT INTO {CENSUS_REL} VALUES ({placeholders})"))?;
    let mut params: Vec<Value> = Vec::with_capacity(census_schema().len());
    for chunk in os.rows().chunks(batch.max(1)) {
        let mut txn = session.transaction()?;
        for row in chunk {
            if row.iter().all(OrSetCell::is_certain) {
                params.clear();
                params.extend(row.iter().map(|c| c.certain_value().expect("certain").clone()));
                txn.execute_prepared(&prepared, &params)?;
            } else {
                txn.run(&row_statement(row))?;
            }
        }
        txn.commit()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::noise::{inject, NoiseSpec};

    #[test]
    fn wsd_components_match_uncertain_fields() {
        let base = generate(100, 1);
        let os = inject(&base, NoiseSpec { rate: 0.02, ..Default::default() }).unwrap();
        let wsd = to_wsd(&os).unwrap();
        wsd.validate().unwrap();
        assert_eq!(wsd.num_components(), os.uncertain_fields());
        // world counts agree
        assert!((wsd.world_count().log2() - os.world_count_log2()).abs() < 1e-6);
    }

    #[test]
    fn small_noisy_wsd_enumerates_to_orset_expansion() {
        let base = generate(4, 9);
        let os = inject(&base, NoiseSpec { rate: 0.02, max_width: 2, ..Default::default() })
            .unwrap();
        let wsd = to_wsd(&os).unwrap();
        let lhs = wsd.to_worldset(1 << 16).unwrap();
        let rhs =
            maybms_worldset::enumerate::expand(&os, CENSUS_REL, Default::default()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn sql_loader_matches_direct_decomposition() {
        let base = generate(60, 3);
        let os = inject(&base, NoiseSpec { rate: 0.05, ..Default::default() }).unwrap();
        // the prepared + transactional loader must produce the same
        // decomposition (byte-identical under the codec) as push_orset
        let direct = to_wsd(&os).unwrap();
        let mut session = Session::new();
        load_into_session(&mut session, &os, 16).unwrap();
        assert!(!session.in_transaction(), "loader leaves no transaction open");
        assert_eq!(
            maybms_core::codec::encode_wsd(&direct),
            maybms_core::codec::encode_wsd(session.wsd()),
        );
    }

    #[test]
    fn sql_loader_batches_commits_on_durable_sessions() {
        let base = generate(30, 4);
        let os = inject(&base, NoiseSpec { rate: 0.05, ..Default::default() }).unwrap();
        let path = std::env::temp_dir().join(format!(
            "maybms-census-load-{}.maybms",
            std::process::id()
        ));
        let wal = maybms_storage::wal_path_for(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
        let mut session = Session::open(&path).unwrap();
        load_into_session(&mut session, &os, 10).unwrap();
        // 1 fsync for CREATE TABLE + one per 10-row batch — not one per row
        assert_eq!(session.wal_sync_count(), Some(1 + 30u64.div_ceil(10)));
        drop(session);
        let recovered = Session::open(&path).unwrap();
        assert_eq!(
            maybms_core::codec::encode_wsd(&to_wsd(&os).unwrap()),
            maybms_core::codec::encode_wsd(recovered.wsd()),
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn certain_wsd_has_one_world() {
        let base = generate(20, 2);
        let wsd = certain_to_wsd(&base).unwrap();
        assert_eq!(wsd.world_count().to_u64(), Some(1));
        assert_eq!(wsd.num_components(), 0);
    }
}
