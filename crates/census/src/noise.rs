//! Noise injection: "We introduced noise with different degree of
//! incompleteness to the data by replacing randomly picked values with
//! or-sets." (paper §1)

use maybms_relational::{Relation, Result, Value};
use maybms_worldset::{OrSetCell, OrSetRelation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::COLUMNS;

/// Parameters of the noise process.
#[derive(Debug, Clone, Copy)]
pub struct NoiseSpec {
    /// Probability that any given field is replaced by an or-set.
    pub rate: f64,
    /// Or-set width is drawn uniformly from `2..=max_width`.
    pub max_width: usize,
    /// When true, alternatives get random (normalized) probabilities;
    /// otherwise uniform — the paper's plain or-sets lifted to the
    /// probabilistic extension.
    pub weighted: bool,
    pub seed: u64,
}

impl Default for NoiseSpec {
    fn default() -> Self {
        NoiseSpec { rate: 0.01, max_width: 4, weighted: false, seed: 0xC0FFEE }
    }
}

/// Replaces randomly picked fields of `r` by or-sets over the field's code
/// domain (always including the original value).
pub fn inject(r: &Relation, spec: NoiseSpec) -> Result<OrSetRelation> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut os = OrSetRelation::from_relation(r);
    debug_assert!(spec.max_width >= 2, "or-sets need at least two alternatives");
    for row in 0..r.len() {
        for (col, spec_col) in COLUMNS.iter().enumerate() {
            if spec_col.domain < 2 {
                continue; // sequential ids are never noisy
            }
            if rng.gen::<f64>() >= spec.rate {
                continue;
            }
            let width = rng.gen_range(2..=spec.max_width.min(spec_col.domain as usize));
            let original = r.rows()[row][col].as_i64().expect("census data is int");
            let mut alts: Vec<i64> = vec![original];
            while alts.len() < width {
                let v = rng.gen_range(0..spec_col.domain as i64);
                if !alts.contains(&v) {
                    alts.push(v);
                }
            }
            let cell = if spec.weighted {
                let mut ws: Vec<f64> = (0..alts.len()).map(|_| rng.gen_range(0.1..1.0)).collect();
                let total: f64 = ws.iter().sum();
                for w in &mut ws {
                    *w /= total;
                }
                // fix rounding drift on the last weight
                let drift: f64 = 1.0 - ws.iter().sum::<f64>();
                *ws.last_mut().expect("nonempty") += drift;
                OrSetCell::weighted(
                    alts.into_iter().map(Value::Int).zip(ws).collect(),
                )?
            } else {
                OrSetCell::uniform(alts.into_iter().map(Value::Int).collect())?
            };
            os.set_cell(row, col, cell)?;
        }
    }
    Ok(os)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn rate_controls_uncertainty() {
        let r = generate(200, 1);
        let low = inject(&r, NoiseSpec { rate: 0.001, ..Default::default() }).unwrap();
        let high = inject(&r, NoiseSpec { rate: 0.05, ..Default::default() }).unwrap();
        assert!(low.uncertain_fields() < high.uncertain_fields());
        // expected counts: 200 rows * 49 noisy columns * rate
        let expect_high = 200.0 * 49.0 * 0.05;
        let got = high.uncertain_fields() as f64;
        assert!(got > expect_high * 0.5 && got < expect_high * 1.7, "got {got}");
    }

    #[test]
    fn deterministic() {
        let r = generate(50, 2);
        let a = inject(&r, NoiseSpec::default()).unwrap();
        let b = inject(&r, NoiseSpec::default()).unwrap();
        assert_eq!(a.uncertain_fields(), b.uncertain_fields());
        assert_eq!(a, b);
    }

    #[test]
    fn original_value_always_possible() {
        let r = generate(100, 3);
        let os = inject(&r, NoiseSpec { rate: 0.05, ..Default::default() }).unwrap();
        for (ri, row) in os.rows().iter().enumerate() {
            for (ci, cell) in row.iter().enumerate() {
                let orig = &r.rows()[ri][ci];
                assert!(
                    cell.alternatives().iter().any(|(v, _)| v == orig),
                    "original value must remain possible"
                );
            }
        }
    }

    #[test]
    fn weighted_probabilities_sum_to_one() {
        let r = generate(100, 4);
        let os = inject(
            &r,
            NoiseSpec { rate: 0.05, weighted: true, ..Default::default() },
        )
        .unwrap();
        for row in os.rows() {
            for cell in row {
                let total: f64 = cell.alternatives().iter().map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn world_count_grows_with_noise() {
        let r = generate(100, 5);
        let os = inject(&r, NoiseSpec { rate: 0.02, ..Default::default() }).unwrap();
        assert!(os.world_count_log2() > 10.0);
    }
}
