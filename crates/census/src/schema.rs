//! The synthetic census schema.
//!
//! The paper's experiments use "a 5% extract from the 1990 US census with
//! nearly 12.5 million records and 50 columns" (IPUMS \[3\]). The real
//! extract is not redistributable, so we reproduce its *shape*: 50 integer-
//! coded columns (IPUMS variables are numeric codes), mostly categorical
//! with small domains plus a few wide numeric fields — the properties the
//! storage and cleaning experiments actually depend on (see DESIGN.md §5).

use maybms_relational::{ColumnType, Schema};

/// One column of the census table: name and the size of its code domain
/// (values are `0..domain`). Wide numeric fields get large domains.
#[derive(Debug, Clone, Copy)]
pub struct CensusColumn {
    pub name: &'static str,
    pub domain: u32,
}

/// The 50 columns, modeled after common IPUMS 1990 variables.
pub const COLUMNS: [CensusColumn; 50] = [
    CensusColumn { name: "serial", domain: 0 },  // 0 = sequential id
    CensusColumn { name: "pernum", domain: 8 },
    CensusColumn { name: "hhwt", domain: 100 },
    CensusColumn { name: "perwt", domain: 100 },
    CensusColumn { name: "statefip", domain: 51 },
    CensusColumn { name: "county", domain: 254 },
    CensusColumn { name: "city", domain: 1000 },
    CensusColumn { name: "puma", domain: 2000 },
    CensusColumn { name: "urban", domain: 3 },
    CensusColumn { name: "metro", domain: 5 },
    CensusColumn { name: "gq", domain: 6 },
    CensusColumn { name: "farm", domain: 2 },
    CensusColumn { name: "ownershp", domain: 3 },
    CensusColumn { name: "mortgage", domain: 5 },
    CensusColumn { name: "rooms", domain: 10 },
    CensusColumn { name: "builtyr", domain: 10 },
    CensusColumn { name: "unitsstr", domain: 11 },
    CensusColumn { name: "vehicles", domain: 8 },
    CensusColumn { name: "relate", domain: 13 },
    CensusColumn { name: "age", domain: 91 },
    CensusColumn { name: "sex", domain: 2 },
    CensusColumn { name: "race", domain: 9 },
    CensusColumn { name: "hispan", domain: 5 },
    CensusColumn { name: "bpl", domain: 120 },
    CensusColumn { name: "citizen", domain: 5 },
    CensusColumn { name: "yrimmig", domain: 50 },
    CensusColumn { name: "speakeng", domain: 7 },
    CensusColumn { name: "school", domain: 3 },
    CensusColumn { name: "educ", domain: 12 },
    CensusColumn { name: "empstat", domain: 4 },
    CensusColumn { name: "labforce", domain: 3 },
    CensusColumn { name: "occ", domain: 500 },
    CensusColumn { name: "ind", domain: 236 },
    CensusColumn { name: "classwkr", domain: 3 },
    CensusColumn { name: "wkswork", domain: 53 },
    CensusColumn { name: "hrswork", domain: 99 },
    CensusColumn { name: "incwage", domain: 75000 },
    CensusColumn { name: "inctot", domain: 100000 },
    CensusColumn { name: "vetstat", domain: 3 },
    CensusColumn { name: "nchild", domain: 10 },
    CensusColumn { name: "nsibs", domain: 10 },
    CensusColumn { name: "famsize", domain: 12 },
    CensusColumn { name: "eldch", domain: 30 },
    CensusColumn { name: "yngch", domain: 30 },
    CensusColumn { name: "momloc", domain: 12 },
    CensusColumn { name: "poploc", domain: 12 },
    CensusColumn { name: "sploc", domain: 12 },
    CensusColumn { name: "migrate", domain: 5 },
    CensusColumn { name: "disabwrk", domain: 3 },
    CensusColumn { name: "marst", domain: 7 },
];

/// Index of a column by name (compile-time constant table, linear scan).
pub fn column_index(name: &str) -> Option<usize> {
    COLUMNS.iter().position(|c| c.name == name)
}

/// The relational schema of the census table (all integer-coded).
pub fn census_schema() -> Schema {
    Schema::new(
        COLUMNS
            .iter()
            .map(|c| (c.name, ColumnType::Int))
            .collect::<Vec<_>>(),
    )
}

/// Marital-status code for "never married/single" (IPUMS `marst` = 6).
pub const MARST_SINGLE: i64 = 6;
/// Employment-status code for "employed" (IPUMS `empstat` = 1).
pub const EMPSTAT_EMPLOYED: i64 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_columns() {
        assert_eq!(COLUMNS.len(), 50);
        assert_eq!(census_schema().len(), 50);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = COLUMNS.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn lookup() {
        assert_eq!(column_index("age"), Some(19));
        assert_eq!(column_index("nope"), None);
        assert_eq!(COLUMNS[column_index("marst").unwrap()].domain, 7);
    }
}
