//! The "real-life integrity constraints" used for data cleaning (E2).

use maybms_core::chase::Constraint;
use maybms_relational::Expr;

use crate::schema::{EMPSTAT_EMPLOYED, MARST_SINGLE};

/// Name of the census relation inside the WSD.
pub const CENSUS_REL: &str = "census";

/// The cleaning constraints:
/// 1. persons younger than 15 are never married (`age < 15 ⇒ marst = 6`),
/// 2. persons younger than 14 are not employed,
/// 3. persons younger than 14 have no wage income,
/// 4. `(serial, pernum)` is a key.
pub fn cleaning_constraints() -> Vec<Constraint> {
    vec![
        Constraint::tuple_check(
            CENSUS_REL,
            Expr::col("age")
                .ge(Expr::lit(15i64))
                .or(Expr::col("marst").eq(Expr::lit(MARST_SINGLE))),
        ),
        Constraint::tuple_check(
            CENSUS_REL,
            Expr::col("age")
                .ge(Expr::lit(14i64))
                .or(Expr::col("empstat").ne(Expr::lit(EMPSTAT_EMPLOYED))),
        ),
        Constraint::tuple_check(
            CENSUS_REL,
            Expr::col("age")
                .ge(Expr::lit(14i64))
                .or(Expr::col("incwage").eq(Expr::lit(0i64))),
        ),
        Constraint::key(CENSUS_REL, &["serial", "pernum"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use maybms_worldset::World;

    #[test]
    fn generated_single_world_is_consistent() {
        let r = generate(300, 11);
        let w = World::single(CENSUS_REL, r);
        for c in cleaning_constraints() {
            assert!(c.holds_in(&w).unwrap(), "generator must satisfy {c:?}");
        }
    }

    #[test]
    fn four_constraints() {
        assert_eq!(cleaning_constraints().len(), 4);
    }
}
