//! # maybms-census
//!
//! The census workload of the MayBMS experiments, reproduced synthetically:
//! the paper used "a 5% extract from the 1990 US census with nearly 12.5
//! million records and 50 columns" (IPUMS) and "introduced noise with
//! different degree of incompleteness to the data by replacing randomly
//! picked values with or-sets". This crate provides the 50-column schema
//! ([`schema`]), a seeded generator ([`mod@generate`]), the noise process
//! ([`noise`]), the cleaning constraints ([`constraints`]) and loaders into
//! the WSD and baseline representations ([`load`]).

#![forbid(unsafe_code)]

pub mod constraints;
pub mod generate;
pub mod load;
pub mod noise;
pub mod schema;

pub use constraints::{cleaning_constraints, CENSUS_REL};
pub use generate::generate;
pub use load::{certain_to_wsd, load_into_session, noisy_census_wsd, row_statement, to_wsd};
pub use noise::{inject, NoiseSpec};
pub use schema::{census_schema, COLUMNS};
