//! Deterministic (seeded) census data generation.

use maybms_relational::{Relation, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::{census_schema, COLUMNS, EMPSTAT_EMPLOYED, MARST_SINGLE};

/// Generates `n` census records. Values are drawn from each column's code
/// domain; a handful of soft correlations are built in so the data is
/// *mostly* consistent with the cleaning constraints (noise injection is
/// what introduces the violations the chase removes):
/// children are single and unemployed with wage 0, `serial` is sequential.
pub fn generate(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::empty(census_schema());
    for serial in 0..n {
        rel.push_unchecked(Tuple::new(generate_row(&mut rng, serial as i64)));
    }
    rel
}

fn generate_row(rng: &mut StdRng, serial: i64) -> Vec<Value> {
    let mut vals: Vec<i64> = COLUMNS
        .iter()
        .map(|c| {
            if c.domain == 0 {
                serial
            } else {
                rng.gen_range(0..c.domain as i64)
            }
        })
        .collect();
    // soft consistency: the generated single world satisfies the cleaning
    // constraints; violations come from injected noise alternatives.
    let age_i = crate::schema::column_index("age").expect("age column");
    let marst_i = crate::schema::column_index("marst").expect("marst column");
    let emp_i = crate::schema::column_index("empstat").expect("empstat column");
    let wage_i = crate::schema::column_index("incwage").expect("incwage column");
    if vals[age_i] < 15 {
        vals[marst_i] = MARST_SINGLE;
    }
    if vals[age_i] < 14 {
        if vals[emp_i] == EMPSTAT_EMPLOYED {
            vals[emp_i] = 3; // not in labor force
        }
        vals[wage_i] = 0;
    }
    vals.into_iter().map(Value::Int).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_relational::Expr;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(50, 7);
        let b = generate(50, 7);
        assert_eq!(a, b);
        let c = generate(50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_domains() {
        let r = generate(200, 1);
        for (i, col) in COLUMNS.iter().enumerate() {
            if col.domain == 0 {
                continue;
            }
            for t in r.iter() {
                let v = t[i].as_i64().unwrap();
                assert!((0..col.domain as i64).contains(&v), "{} out of range", col.name);
            }
        }
    }

    #[test]
    fn serial_is_sequential() {
        let r = generate(10, 3);
        for (i, t) in r.iter().enumerate() {
            assert_eq!(t[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn generated_world_is_consistent() {
        let r = generate(500, 42);
        // age<15 -> marst=single
        let check = Expr::col("age")
            .ge(Expr::lit(15i64))
            .or(Expr::col("marst").eq(Expr::lit(MARST_SINGLE)));
        let bound = check.bind(r.schema()).unwrap();
        for t in r.iter() {
            assert!(bound.eval_predicate(t).unwrap());
        }
    }
}
