//! Scope analysis over the token stream: which tokens are test code,
//! and where function bodies begin and end.
//!
//! Test scope is what makes the rules honest — `std::fs` in a unit test
//! that deliberately corrupts a file on disk is fine; the same call on
//! the WAL append path is a torn invariant. A token is *test code* when
//! it sits inside the body of an item annotated `#[cfg(test)]` /
//! `#[test]` (including `#[cfg(any(test, …))]`), inside an inline
//! `mod tests { … }` / `mod test { … }`, or anywhere in a file whose
//! path puts it under an integration-`tests/` directory (the caller
//! decides that part from the path).

use crate::tokenizer::Token;

/// Returns, for each token, whether it lies in test scope.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        // attributes: `#[…]` (outer) or `#![…]` (inner)
        if tokens[i].is_punct('#') {
            let (bracket, inner) = match tokens.get(i + 1) {
                Some(t) if t.is_punct('[') => (i + 1, false),
                Some(t) if t.is_punct('!') && tokens.get(i + 2).is_some_and(|t| t.is_punct('[')) => {
                    (i + 2, true)
                }
                _ => {
                    i += 1;
                    continue;
                }
            };
            let close = matching_bracket(tokens, bracket);
            let is_test_attr =
                tokens[bracket + 1..close].iter().any(|t| t.is_ident("test") || t.is_ident("tests"));
            if is_test_attr {
                if inner {
                    // `#![cfg(test)]`: the whole enclosing scope (for a
                    // file-leading attribute, the whole file) is test code
                    for m in mask.iter_mut().skip(i) {
                        *m = true;
                    }
                    return mask;
                }
                mark_item(tokens, &mut mask, i, close + 1);
            }
            i = close + 1;
            continue;
        }
        // inline test modules without an attribute
        if tokens[i].is_ident("mod")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("tests") || t.is_ident("test"))
        {
            mark_item(tokens, &mut mask, i, i + 2);
            i += 2;
            continue;
        }
        i += 1;
    }
    mask
}

/// Marks the item that starts at `from` (scanning from `scan`): either
/// up to its terminating `;`, or through its `{ … }` body. Bracket and
/// paren nesting is respected so `[u8; 3]` semicolons and const-generic
/// braces don't cut the item short.
fn mark_item(tokens: &[Token], mask: &mut [bool], from: usize, scan: usize) {
    let mut depth = 0i64; // () and [] nesting between item head and body
    let mut j = scan;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('#') && depth == 0 {
            // a stacked attribute between the cfg and the item: skip it
            if let Some(b) = tokens.get(j + 1) {
                if b.is_punct('[') {
                    j = matching_bracket(tokens, j + 1);
                }
            }
        } else if t.is_punct(';') && depth == 0 {
            for m in &mut mask[from..=j] {
                *m = true;
            }
            return;
        } else if t.is_punct('{') && depth == 0 {
            let close = matching_brace(tokens, j);
            for m in &mut mask[from..=close] {
                *m = true;
            }
            return;
        }
        j += 1;
    }
    // unterminated item: mark to end of file
    for m in &mut mask[from..] {
        *m = true;
    }
}

/// Index of the `]` matching the `[` at `open` (clamped to the last
/// token when unterminated).
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open` (clamped to the last
/// token when unterminated).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Token-index spans `(open_brace, close_brace)` of every `fn` body, in
/// source order. Nested functions yield nested spans.
pub fn fn_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        // walk the signature: the body is the first `{` outside () / []
        let mut depth = 0i64;
        let mut j = i + 1;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                break; // bodyless declaration (trait method)
            } else if t.is_punct('{') && depth == 0 {
                spans.push((j, matching_brace(tokens, j)));
                break;
            }
            j += 1;
        }
    }
    spans
}

/// The innermost `fn` body span containing token `i`, if any.
pub fn enclosing_fn(spans: &[(usize, usize)], i: usize) -> Option<(usize, usize)> {
    spans
        .iter()
        .copied()
        .filter(|&(o, c)| o <= i && i <= c)
        .min_by_key(|&(o, c)| c - o)
}
