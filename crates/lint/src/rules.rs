//! The rule set: each rule guards one project invariant that is
//! otherwise enforced only by tests (see `docs/ARCHITECTURE.md` §6 for
//! the rule → invariant map).
//!
//! Rules pattern-match short token runs — `Ident("std") Punct(':')
//! Punct(':') Ident("fs")` — over the comment-and-string-safe stream
//! from [`crate::tokenizer`], restricted to the files and non-test
//! scopes where the invariant holds. Matching on tokens rather than
//! text is what makes `// std::fs is banned here` and `"std::fs"`
//! inside a diagnostic message non-findings.

use std::collections::HashSet;

use crate::scope;
use crate::tokenizer::{TokKind, Token};
use crate::{Diagnostic, FileCtx};

/// Every rule name, in reporting order. Allow directives must name one
/// of these.
pub const RULE_NAMES: [&str; 5] = [
    "vfs-completeness",
    "determinism",
    "poison-discipline",
    "no-panic-in-prod",
    "obs-handle-discipline",
];

/// One element of a token pattern.
#[derive(Clone, Copy)]
enum Pat<'a> {
    /// An exact identifier.
    I(&'a str),
    /// One of several identifiers.
    OneOf(&'a [&'a str]),
    /// An exact punctuation char.
    P(char),
}

/// Whether the pattern matches the token run starting at `i`.
fn seq(tokens: &[Token], i: usize, pat: &[Pat]) -> bool {
    if i + pat.len() > tokens.len() {
        return false;
    }
    pat.iter().zip(&tokens[i..]).all(|(p, t)| match *p {
        Pat::I(s) => t.is_ident(s),
        Pat::OneOf(ss) => t.kind == TokKind::Ident && ss.contains(&t.text.as_str()),
        Pat::P(c) => t.is_punct(c),
    })
}

/// Shared context handed to each rule.
pub struct RuleInput<'a> {
    pub ctx: &'a FileCtx,
    pub tokens: &'a [Token],
    /// `test[i]` — token `i` is test code (file-level or span-level).
    pub test: &'a [bool],
    /// `fn` body spans for enclosing-function checks.
    pub fn_spans: &'a [(usize, usize)],
}

impl RuleInput<'_> {
    fn diag(&self, rule: &'static str, line: u32, msg: String) -> Diagnostic {
        Diagnostic { rule, file: self.ctx.rel.clone(), line, msg }
    }
}

/// Runs every rule over one file.
pub fn run_all(input: &RuleInput<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    vfs_completeness(input, &mut out);
    determinism(input, &mut out);
    poison_discipline(input, &mut out);
    no_panic_in_prod(input, &mut out);
    obs_handle_discipline(input, &mut out);
    out
}

// ---------------------------------------------------------------------
// Rule 1: vfs-completeness
// ---------------------------------------------------------------------

/// Storage and SQL production code must do *all* file I/O through the
/// `Vfs` boundary — a direct `std::fs` call is a hole the
/// fault-injection torture harness (`FaultVfs`) can never exercise, so
/// the crash-recovery invariant ("recovery is always a committed-group
/// prefix") would hold only on the paths tests happen to reach.
fn vfs_completeness(input: &RuleInput<'_>, out: &mut Vec<Diagnostic>) {
    let rel = input.ctx.rel.as_str();
    let scoped = (rel.starts_with("crates/storage/src/") && !rel.ends_with("/vfs.rs"))
        || rel.starts_with("crates/sql/src/");
    if !scoped || input.ctx.is_test_file {
        return;
    }
    const RULE: &str = "vfs-completeness";
    for i in 0..input.tokens.len() {
        if input.test[i] {
            continue;
        }
        let t = &input.tokens[i];
        if seq(input.tokens, i, &[Pat::I("std"), Pat::P(':'), Pat::P(':'), Pat::I("fs")]) {
            out.push(input.diag(
                RULE,
                t.line,
                "direct `std::fs` call bypasses the Vfs boundary (fault injection cannot see it); route it through `Vfs`/`VfsFile`".into(),
            ));
        } else if seq(
            input.tokens,
            i,
            &[Pat::I("File"), Pat::P(':'), Pat::P(':'), Pat::OneOf(&["open", "create"])],
        ) {
            out.push(input.diag(
                RULE,
                t.line,
                "`File::open`/`File::create` bypasses the Vfs boundary; use `Vfs::open` with an `OpenMode`".into(),
            ));
        } else if t.is_ident("OpenOptions") {
            out.push(input.diag(
                RULE,
                t.line,
                "`OpenOptions` bypasses the Vfs boundary; extend `OpenMode` instead if no mode fits".into(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: determinism
// ---------------------------------------------------------------------

/// Paths where the determinism invariant is proven ("byte-identical
/// output at every worker count; replica ≡ primary at every shipped
/// prefix"): the executor, normalize, prob, the codec and the
/// replication apply loop.
fn determinism_scoped(rel: &str) -> bool {
    rel.starts_with("crates/core/src/exec/")
        || rel == "crates/core/src/normalize.rs"
        || rel == "crates/core/src/prob.rs"
        || rel == "crates/core/src/codec.rs"
        || rel == "crates/sql/src/replication.rs"
}

/// No wall-clock reads, unseeded randomness, or direct `HashMap` /
/// `HashSet` iteration on the deterministic paths. Hash iteration
/// order is the classic silent killer: it differs run to run, so a
/// `for (k, v) in &map` that feeds output order breaks byte-identity at
/// some worker count, someday, in a way no single test run catches.
fn determinism(input: &RuleInput<'_>, out: &mut Vec<Diagnostic>) {
    if !determinism_scoped(&input.ctx.rel) || input.ctx.is_test_file {
        return;
    }
    const RULE: &str = "determinism";
    let hash_names = hash_typed_names(input.tokens);
    const ITER_METHODS: [&str; 8] =
        ["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_keys", "into_values"];
    for i in 0..input.tokens.len() {
        if input.test[i] {
            continue;
        }
        let t = &input.tokens[i];
        if seq(
            input.tokens,
            i,
            &[Pat::OneOf(&["Instant", "SystemTime"]), Pat::P(':'), Pat::P(':'), Pat::I("now")],
        ) {
            out.push(input.diag(
                RULE,
                t.line,
                format!(
                    "`{}::now` on a deterministic path; wall clock must not influence output (observability-only uses need a justified allow)",
                    t.text
                ),
            ));
        } else if seq(input.tokens, i, &[Pat::OneOf(&["thread_rng", "from_entropy"]), Pat::P('(')]) {
            out.push(input.diag(
                RULE,
                t.line,
                format!("`{}` is unseeded randomness on a deterministic path; derive seeds from explicit inputs", t.text),
            ));
        } else if t.kind == TokKind::Ident
            && hash_names.contains(t.text.as_str())
            && seq(input.tokens, i + 1, &[Pat::P('.'), Pat::OneOf(&ITER_METHODS), Pat::P('(')])
        {
            out.push(input.diag(
                RULE,
                t.line,
                format!(
                    "iteration over hash-ordered `{}` on a deterministic path; sort before use or iterate a BTree/indexed structure (justify with an allow if order provably cannot leak)",
                    t.text
                ),
            ));
        } else if t.is_ident("in") {
            // `for … in [&][mut] path.to.name {` — the last segment of a
            // dotted path is checked against the hash-typed names
            let mut j = i + 1;
            while j < input.tokens.len()
                && (input.tokens[j].is_punct('&') || input.tokens[j].is_ident("mut"))
            {
                j += 1;
            }
            let mut last_ident: Option<usize> = None;
            while j < input.tokens.len() {
                if input.tokens[j].kind == TokKind::Ident {
                    last_ident = Some(j);
                    j += 1;
                    if j < input.tokens.len() && input.tokens[j].is_punct('.') {
                        j += 1;
                        continue;
                    }
                }
                break;
            }
            if let Some(k) = last_ident {
                if input.tokens.get(j).is_some_and(|t| t.is_punct('{'))
                    && hash_names.contains(input.tokens[k].text.as_str())
                {
                    out.push(input.diag(
                        RULE,
                        input.tokens[k].line,
                        format!(
                            "`for … in {}` iterates a hash-ordered structure on a deterministic path",
                            input.tokens[k].text
                        ),
                    ));
                }
            }
        }
    }
}

/// Identifiers bound to a `HashMap`/`HashSet` anywhere in the file:
/// `name: [&[mut]] HashMap<…>` (declarations, params, struct fields)
/// and `name = [path::]HashMap::…` initializations. A heuristic — it
/// has no type inference — but one that catches exactly the "I iterated
/// the map I just built" shape real regressions take.
fn hash_typed_names(tokens: &[Token]) -> HashSet<String> {
    let mut names = HashSet::new();
    const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
    for i in 0..tokens.len() {
        if tokens[i].kind != TokKind::Ident {
            continue;
        }
        // name : [&] [mut] HashMap
        if tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            let mut j = i + 2;
            while j < tokens.len() && (tokens[j].is_punct('&') || tokens[j].is_ident("mut")) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| HASH_TYPES.contains(&t.text.as_str())) {
                names.insert(tokens[i].text.clone());
                continue;
            }
        }
        // name = [std :: collections ::] HashMap :: …
        if tokens.get(i + 1).is_some_and(|t| t.is_punct('=')) {
            let mut j = i + 2;
            while j < tokens.len()
                && (tokens[j].is_punct(':')
                    || tokens[j].is_ident("std")
                    || tokens[j].is_ident("collections"))
            {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| HASH_TYPES.contains(&t.text.as_str()))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
            {
                names.insert(tokens[i].text.clone());
            }
        }
    }
    names
}

// ---------------------------------------------------------------------
// Rule 3: poison-discipline
// ---------------------------------------------------------------------

/// Durability paths where a swallowed `Result` can silently skip
/// poisoning or degrade-to-read-only: the WAL, checkpointing, snapshot
/// and delta publication, and the session commit path.
fn poison_scoped(rel: &str) -> bool {
    matches!(
        rel,
        "crates/storage/src/wal.rs"
            | "crates/storage/src/db.rs"
            | "crates/storage/src/snapshot.rs"
            | "crates/storage/src/delta.rs"
            | "crates/sql/src/session.rs"
    )
}

/// No discarded `Result`s on durability paths. A dropped error from
/// `Wal::append` or a checkpoint publish is how "never ack a commit
/// whose fsync failed" (PR 6) silently stops being true.
fn poison_discipline(input: &RuleInput<'_>, out: &mut Vec<Diagnostic>) {
    if !poison_scoped(&input.ctx.rel) || input.ctx.is_test_file {
        return;
    }
    const RULE: &str = "poison-discipline";
    for i in 0..input.tokens.len() {
        if input.test[i] {
            continue;
        }
        let t = &input.tokens[i];
        if seq(input.tokens, i, &[Pat::I("let"), Pat::I("_"), Pat::P('=')]) {
            out.push(input.diag(
                RULE,
                t.line,
                "`let _ =` discards a result on a durability path; handle the error, poison/degrade, or justify with an allow".into(),
            ));
        } else if seq(input.tokens, i, &[Pat::P('.'), Pat::I("ok"), Pat::P('('), Pat::P(')'), Pat::P(';')]) {
            out.push(input.diag(
                RULE,
                t.line,
                "`.ok();` discards a Result on a durability path; handle the error or justify with an allow".into(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: no-panic-in-prod
// ---------------------------------------------------------------------

/// Production code of the four engine crates must not reach for
/// `unwrap`/`expect`/`panic!` without stating *why the failure case is
/// impossible or fail-stop is intended* — a bare unwrap on a fallible
/// path turns a recoverable `SessionError` into a crashed process
/// serving nobody.
fn no_panic_in_prod(input: &RuleInput<'_>, out: &mut Vec<Diagnostic>) {
    let rel = input.ctx.rel.as_str();
    let scoped = ["crates/core/src/", "crates/sql/src/", "crates/storage/src/", "crates/obs/src/"]
        .iter()
        .any(|p| rel.starts_with(p));
    if !scoped || input.ctx.is_test_file {
        return;
    }
    const RULE: &str = "no-panic-in-prod";
    for i in 0..input.tokens.len() {
        if input.test[i] {
            continue;
        }
        if seq(input.tokens, i, &[Pat::P('.'), Pat::OneOf(&["unwrap", "expect"]), Pat::P('(')]) {
            let t = &input.tokens[i + 1];
            out.push(input.diag(
                RULE,
                t.line,
                format!("`.{}(…)` in production code; return an error or justify why this cannot fail", t.text),
            ));
        } else if seq(
            input.tokens,
            i,
            &[Pat::OneOf(&["panic", "unreachable", "todo", "unimplemented"]), Pat::P('!')],
        ) {
            let t = &input.tokens[i];
            out.push(input.diag(
                RULE,
                t.line,
                format!("`{}!` in production code; return an error or justify why this cannot fire", t.text),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: obs-handle-discipline
// ---------------------------------------------------------------------

/// Metric *name lookups* (`maybms_obs::counter("…")`) hash the name and
/// take the registry lock — PR 8's hot-path contract is that they
/// happen once, inside a `OnceLock` handle initializer, never per
/// operation. This rule pins that contract: a lookup is legal only
/// inside a function that also mentions `OnceLock` (the
/// `fn metrics()`-style initializer shape every instrumented module
/// uses).
fn obs_handle_discipline(input: &RuleInput<'_>, out: &mut Vec<Diagnostic>) {
    let rel = input.ctx.rel.as_str();
    let scoped = ["crates/core/src/", "crates/sql/src/", "crates/storage/src/", "crates/census/src/"]
        .iter()
        .any(|p| rel.starts_with(p));
    if !scoped || input.ctx.is_test_file {
        return;
    }
    const RULE: &str = "obs-handle-discipline";
    const LOOKUPS: [&str; 3] = ["counter", "gauge", "histogram"];
    for i in 0..input.tokens.len() {
        if input.test[i] {
            continue;
        }
        let hit = if seq(
            input.tokens,
            i,
            &[Pat::I("maybms_obs"), Pat::P(':'), Pat::P(':'), Pat::OneOf(&LOOKUPS), Pat::P('(')],
        ) {
            Some(i + 3)
        } else if seq(
            input.tokens,
            i,
            &[Pat::I("registry"), Pat::P('('), Pat::P(')'), Pat::P('.'), Pat::OneOf(&LOOKUPS), Pat::P('(')],
        ) {
            Some(i + 4)
        } else {
            None
        };
        let Some(name_idx) = hit else { continue };
        let ok = scope::enclosing_fn(input.fn_spans, i).is_some_and(|(o, c)| {
            input.tokens[o..=c]
                .iter()
                .any(|t| t.is_ident("OnceLock") || t.is_ident("get_or_init"))
        });
        if !ok {
            out.push(input.diag(
                RULE,
                input.tokens[name_idx].line,
                format!(
                    "metric name lookup `{}(…)` outside a OnceLock handle initializer; resolve handles once and reuse them (PR 8 hot-path contract)",
                    input.tokens[name_idx].text
                ),
            ));
        }
    }
}
