//! # maybms-lint
//!
//! A dependency-free static analyzer that proves the workspace's
//! *project invariants* at the source level on every CI run. The
//! repo's strongest guarantees — recovery is a committed-group prefix,
//! execution is byte-identical at every worker count, observability is
//! inert — are enforced by tests, and every one of them can be silently
//! broken by a single careless edit that no unit test happens to cross.
//! This crate closes that gap: a hand-rolled, comment/string/raw-string
//! aware tokenizer ([`tokenizer`]), test-scope and function-span
//! tracking (`scope`, internal), and a rule engine ([`rules`]) that
//! reports `file:line` diagnostics and exits nonzero.
//!
//! ## Escape hatch
//!
//! A finding that is *intended* is silenced inline, with a mandatory
//! justification:
//!
//! ```text
//! // maybms-lint: allow(no-panic-in-prod) -- mutex poisoning means a sibling already panicked; fail-stop is intended
//! let s = self.state.lock().expect("queue poisoned");
//! ```
//!
//! An own-line directive covers the next line of code; a trailing
//! directive covers its own line. `allow(rule-a, rule-b)` covers
//! several rules at once. Directives without a `-- justification`, with
//! unknown rule names, or that suppress nothing are **errors
//! themselves** — the allow list can only ever shrink truthfully.
//!
//! ## Adding a rule
//!
//! See `docs/ARCHITECTURE.md` §6: add the name to
//! [`rules::RULE_NAMES`], write the token-pattern check in
//! `src/rules.rs` scoped to the files where the invariant holds, and
//! add one positive, one negative and one justified-allow fixture under
//! `tests/fixtures/`.

#![forbid(unsafe_code)]

pub mod rules;
mod scope;
pub mod tokenizer;

use std::path::{Path, PathBuf};

use tokenizer::Comment;

/// One finding: a rule violation or a directive problem.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule name, or `"directive"` for allow-directive errors.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "error[{}]: {}:{}: {}", self.rule, self.file, self.line, self.msg)
    }
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Whole file is test code (integration tests directory).
    pub is_test_file: bool,
}

/// A parsed `maybms-lint: allow(…)` directive.
#[derive(Debug)]
struct Directive {
    rules: Vec<String>,
    justified: bool,
    /// The line of code this directive covers.
    bound_line: u32,
    /// Where the directive itself lives (for reporting).
    comment_line: u32,
    used: bool,
}

/// Parses a directive out of one comment, if present. `Err` carries a
/// malformed-directive message.
fn parse_directive(c: &Comment, bound_line: u32) -> Option<Result<Directive, String>> {
    // doc comments talk *about* directives (rustdoc examples, rule
    // documentation); only plain `//` / `/* */` comments carry them
    if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/**") || c.text.starts_with("/*!") {
        return None;
    }
    let marker = "maybms-lint:";
    let at = c.text.find(marker)?;
    let rest = c.text[at + marker.len()..].trim_start();
    let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
        return Some(Err(format!(
            "malformed directive: expected `maybms-lint: allow(<rule>) -- <justification>`, got `{}`",
            rest.trim_end()
        )));
    };
    let (names, tail) = inner;
    let rules: Vec<String> =
        names.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    if rules.is_empty() {
        return Some(Err("directive names no rules".into()));
    }
    let justified = tail
        .split_once("--")
        .is_some_and(|(_, justification)| !justification.trim().is_empty());
    Some(Ok(Directive { rules, justified, bound_line, comment_line: c.line, used: false }))
}

/// Lints one file's source text. `rel` must be the workspace-relative
/// path with forward slashes (it drives rule scoping).
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx { rel: rel.to_string(), is_test_file: is_test_path(rel) };
    let lexed = tokenizer::tokenize(src);
    let test = scope::test_mask(&lexed.tokens);
    let fn_spans = scope::fn_spans(&lexed.tokens);
    let input =
        rules::RuleInput { ctx: &ctx, tokens: &lexed.tokens, test: &test, fn_spans: &fn_spans };
    let raw = rules::run_all(&input);

    // resolve allow directives
    let mut directives = Vec::new();
    let mut out = Vec::new();
    for c in &lexed.comments {
        let bound_line = if c.own_line {
            lexed.tokens.get(c.next_token).map(|t| t.line).unwrap_or(c.end_line + 1)
        } else {
            c.line
        };
        match parse_directive(c, bound_line) {
            None => {}
            Some(Ok(d)) => {
                for r in &d.rules {
                    if !rules::RULE_NAMES.contains(&r.as_str()) {
                        out.push(Diagnostic {
                            rule: "directive",
                            file: rel.to_string(),
                            line: c.line,
                            msg: format!(
                                "unknown rule `{r}` in allow directive (known: {})",
                                rules::RULE_NAMES.join(", ")
                            ),
                        });
                    }
                }
                directives.push(d);
            }
            Some(Err(msg)) => {
                out.push(Diagnostic { rule: "directive", file: rel.to_string(), line: c.line, msg });
            }
        }
    }

    for d in raw {
        let allowed = directives.iter_mut().find(|dir| {
            dir.bound_line == d.line && dir.rules.iter().any(|r| r == d.rule)
        });
        match allowed {
            Some(dir) => {
                dir.used = true;
                if !dir.justified {
                    out.push(Diagnostic {
                        rule: "directive",
                        file: rel.to_string(),
                        line: dir.comment_line,
                        msg: format!(
                            "allow({}) has no justification; write `-- <why this is sound>`",
                            d.rule
                        ),
                    });
                }
            }
            None => out.push(d),
        }
    }

    for dir in &directives {
        if !dir.used {
            out.push(Diagnostic {
                rule: "directive",
                file: rel.to_string(),
                line: dir.comment_line,
                msg: format!(
                    "unused allow({}) directive: nothing on line {} triggers it — remove it",
                    dir.rules.join(", "),
                    dir.bound_line
                ),
            });
        }
    }

    out.sort_by_key(|d| d.line);
    out
}

/// Whether a workspace-relative path is test-only by position.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|seg| seg == "tests")
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "fixtures", "node_modules", ".github"];

/// Walks the workspace rooted at `root` and lints every `.rs` file.
/// Returns all diagnostics plus the number of files scanned.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.extend(lint_source(&rel, &src));
    }
    Ok((out, files.len()))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
