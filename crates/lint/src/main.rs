//! The `maybms-lint` CLI: lints the workspace (or an explicit root) and
//! exits nonzero on any finding.
//!
//! ```text
//! cargo run -p maybms-lint            # lint the enclosing workspace
//! cargo run -p maybms-lint -- <root>  # lint an explicit tree
//! cargo run -p maybms-lint -- --rules # list the rules
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules") {
        for r in maybms_lint::rules::RULE_NAMES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.first() {
        Some(p) => PathBuf::from(p),
        // src/main.rs lives at <root>/crates/lint; CARGO_MANIFEST_DIR is
        // compiled in, so the binary finds the workspace from anywhere.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let (diags, files) = match maybms_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("maybms-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("maybms-lint: {files} files clean");
        ExitCode::SUCCESS
    } else {
        println!("maybms-lint: {} finding(s) in {files} files", diags.len());
        ExitCode::FAILURE
    }
}
