//! A hand-rolled Rust tokenizer: just enough lexical structure to walk
//! source files rule by rule without ever being fooled by comments,
//! string/char literals, raw strings, or raw identifiers.
//!
//! The tokenizer is *lossy on purpose* — it does not classify keywords,
//! multi-char operators, or numeric suffixes. Rules match sequences of
//! identifiers and single-character punctuation (`std` `::` `fs` is the
//! token run `Ident("std") Punct(':') Punct(':') Ident("fs")`), which is
//! all the pattern language the project invariants need. What it *does*
//! get right, carefully, is everything that could make a naive
//! grep-style scan lie:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes (`"\" // not a comment"`);
//! * raw strings `r"…"`, `r#"…"#` (any number of `#`s) and their byte
//!   (`br#"…"#`) and C (`cr"…"`) cousins;
//! * char literals — including `'"'`, `'\''` and `'\\'` — versus
//!   lifetimes (`'a`, `'_`, `'static`);
//! * raw identifiers `r#type` versus raw strings `r#"…"#`.
//!
//! Comments are returned alongside tokens (not discarded) because the
//! allow-directive escape hatch lives in them.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`std`, `fn`, `unwrap`); raw
    /// identifiers (`r#type`) are normalized to their bare name.
    Ident,
    /// A lifetime or loop label, without the leading `'`.
    Lifetime,
    /// A string literal of any flavour (plain, raw, byte, C).
    Str,
    /// A char or byte-char literal.
    Char,
    /// A numeric literal.
    Num,
    /// A single punctuation character (`:`, `.`, `!`, `{`, …).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// The token text. For [`TokKind::Punct`] this is one character;
    /// for literals it is the raw source slice.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] as char == c
    }
}

/// A comment, kept for allow-directive scanning.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including delimiters.
    pub text: String,
    /// 1-based line of the `//` or `/*`.
    pub line: u32,
    /// 1-based line where the comment ends (same as `line` for `//`).
    pub end_line: u32,
    /// True when no token precedes the comment on its starting line —
    /// an own-line comment binds to the *next* line of code, a trailing
    /// comment to its own line.
    pub own_line: bool,
    /// Index into the token stream of the first token *after* this
    /// comment (== `tokens.len()` for a trailing end-of-file comment).
    pub next_token: usize,
}

/// The output of [`tokenize`]: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Never fails: unterminated constructs are consumed
/// to end-of-file, which is the forgiving behaviour a linter wants (the
/// compiler is the authority on well-formedness, not us).
pub fn tokenize(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, line_has_token: false, out: Lexed::default() }
        .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Whether a token has already been emitted on the current line
    /// (drives [`Comment::own_line`]).
    line_has_token: bool,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, maintaining the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.line_has_token = false;
            }
        }
        c
    }

    fn push_token(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
        self.line_has_token = true;
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, String::new()),
                'r' | 'b' | 'c' => {
                    self.literal_prefix();
                }
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                '\'' => self.char_or_lifetime(line),
                _ => {
                    self.bump();
                    self.push_token(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// Dispatches the `r` / `b` / `c` prefix family: raw strings, byte
    /// strings, byte chars, raw identifiers — or just an identifier
    /// starting with one of those letters. Returns true when it
    /// consumed something.
    fn literal_prefix(&mut self) -> bool {
        let line = self.line;
        let c0 = self.peek(0).unwrap_or(' ');
        // two-char prefixes first: br"", cr"", and their #-raw forms
        if (c0 == 'b' || c0 == 'c') && self.peek(1) == Some('r') {
            let mut k = 2;
            while self.peek(k) == Some('#') {
                k += 1;
            }
            if self.peek(k) == Some('"') {
                self.bump();
                self.bump();
                self.raw_string(line, String::from_iter([c0, 'r']));
                return true;
            }
        }
        if c0 == 'b' && self.peek(1) == Some('"') {
            self.bump();
            self.string(line, String::from("b"));
            return true;
        }
        if c0 == 'b' && self.peek(1) == Some('\'') {
            self.bump();
            self.bump();
            self.char_body(line, String::from("b'"));
            return true;
        }
        if c0 == 'c' && self.peek(1) == Some('"') {
            self.bump();
            self.string(line, String::from("c"));
            return true;
        }
        if c0 == 'r' {
            let mut k = 1;
            while self.peek(k) == Some('#') {
                k += 1;
            }
            if self.peek(k) == Some('"') {
                self.bump();
                self.raw_string(line, String::from("r"));
                return true;
            }
            // raw identifier r#name
            if k == 2 && self.peek(1) == Some('#') {
                if let Some(c2) = self.peek(2) {
                    if c2.is_alphabetic() || c2 == '_' {
                        self.bump();
                        self.bump();
                        self.ident(line); // emits the bare name
                        return true;
                    }
                }
            }
        }
        // plain identifier starting with r/b/c
        self.ident(line);
        true
    }

    fn line_comment(&mut self, line: u32) {
        let own_line = !self.line_has_token;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let next_token = self.out.tokens.len();
        self.out.comments.push(Comment { text, line, end_line: line, own_line, next_token });
    }

    fn block_comment(&mut self, line: u32) {
        let own_line = !self.line_has_token;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let end_line = self.line;
        let next_token = self.out.tokens.len();
        self.out.comments.push(Comment { text, line, end_line, own_line, next_token });
    }

    /// A (possibly prefixed) non-raw string literal; the opening `"` has
    /// not been consumed yet.
    fn string(&mut self, line: u32, mut text: String) {
        text.push('"');
        self.bump(); // the quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_token(TokKind::Str, text, line);
    }

    /// A raw string; the cursor sits on the first `#` or the `"`.
    fn raw_string(&mut self, line: u32, mut text: String) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        let closer: String = std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
        let closer: Vec<char> = closer.chars().collect();
        while let Some(c) = self.peek(0) {
            if c == '"' && (0..hashes).all(|k| self.peek(1 + k) == Some('#')) {
                for &cc in &closer {
                    text.push(cc);
                    self.bump();
                }
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push_token(TokKind::Str, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // fractional part — but never eat the first dot of `0..n`
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokKind::Num, text, line);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): after the quote,
    /// an identifier char followed by a closing `'` is a char literal;
    /// an identifier not followed by `'` is a lifetime. Everything else
    /// (escapes, `'"'`, `'('`) is a char literal.
    fn char_or_lifetime(&mut self, line: u32) {
        let c1 = self.peek(1);
        let is_lifetime = match c1 {
            Some(c) if c.is_alphabetic() || c == '_' => {
                // scan the identifier; lifetime iff not closed by '
                let mut k = 2;
                while self.peek(k).is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    k += 1;
                }
                self.peek(k) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.bump(); // the quote
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokKind::Lifetime, text, line);
        } else {
            self.bump();
            self.char_body(line, String::from("'"));
        }
    }

    /// The body of a char literal after its opening quote.
    fn char_body(&mut self, line: u32, mut text: String) {
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push_token(TokKind::Char, text, line);
    }
}
