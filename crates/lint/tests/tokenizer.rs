//! Tokenizer unit tests: everything that could make a grep-style scan
//! lie must come out of the lexer correctly classified.

use maybms_lint::tokenizer::{tokenize, TokKind};

fn idents(src: &str) -> Vec<String> {
    tokenize(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn comments_are_not_tokens() {
    let src = "fn a() {} // std::fs::read\n/* unwrap() */ fn b() {}";
    let ids = idents(src);
    assert_eq!(ids, ["fn", "a", "fn", "b"]);
    let lexed = tokenize(src);
    assert_eq!(lexed.comments.len(), 2);
    assert!(lexed.comments[0].text.contains("std::fs::read"));
}

#[test]
fn nested_block_comments() {
    let src = "/* outer /* inner */ still comment */ fn x() {}";
    let ids = idents(src);
    assert_eq!(ids, ["fn", "x"]);
    let lexed = tokenize(src);
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("inner"));
}

#[test]
fn strings_with_escapes_hide_their_content() {
    // the escaped quote must not end the string early and expose `// x`
    let src = r#"let s = "a\" // not a comment"; fn y() {}"#;
    let lexed = tokenize(src);
    assert!(lexed.comments.is_empty(), "no comment inside the string");
    let ids = idents(src);
    assert_eq!(ids, ["let", "s", "fn", "y"]);
}

#[test]
fn raw_strings_any_hash_depth() {
    let src = r###"let s = r#"std::fs::read " // inner"#; let t = r"plain";"###;
    let lexed = tokenize(src);
    assert!(lexed.comments.is_empty());
    let strs: Vec<_> =
        lexed.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 2);
    assert!(strs[0].text.contains("std::fs::read"));
    // nothing from inside the raw string leaked out as identifiers
    assert_eq!(idents(src), ["let", "s", "let", "t"]);
}

#[test]
fn byte_and_c_string_prefixes() {
    let src = r###"let a = b"bytes"; let b2 = br#"raw bytes"#; let c2 = cr"c raw"; let d = b'x';"###;
    let lexed = tokenize(src);
    let strs = lexed.tokens.iter().filter(|t| t.kind == TokKind::Str).count();
    let chars = lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
    assert_eq!(strs, 3);
    assert_eq!(chars, 1);
    assert_eq!(idents(src), ["let", "a", "let", "b2", "let", "c2", "let", "d"]);
}

#[test]
fn char_literals_vs_lifetimes() {
    // '"' is the nasty one: a naive scanner thinks a string just opened
    let src = "let q = '\"'; let esc = '\\''; let back = '\\\\'; fn f<'a>(x: &'a str) {}";
    let lexed = tokenize(src);
    let chars: Vec<_> =
        lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).collect();
    assert_eq!(chars.len(), 3);
    let lifetimes: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(lifetimes, ["a", "a"]);
    assert!(lexed.comments.is_empty());
}

#[test]
fn raw_identifiers_normalize() {
    let src = "fn r#type(r#fn: u32) {}";
    assert_eq!(idents(src), ["fn", "type", "fn", "u32"]);
}

#[test]
fn numbers_and_ranges() {
    let src = "let x = 1.5; for i in 0..10 {}";
    let lexed = tokenize(src);
    let nums: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.clone())
        .collect();
    // 0..10 must lex as 0, .., 10 — not 0. followed by .10
    assert_eq!(nums, ["1.5", "0", "10"]);
}

#[test]
fn own_line_vs_trailing_comments() {
    let src = "// own line\nlet a = 1; // trailing\nlet b = 2;";
    let lexed = tokenize(src);
    assert_eq!(lexed.comments.len(), 2);
    let own = &lexed.comments[0];
    assert!(own.own_line);
    // binds to the next token: `let` of line 2
    assert_eq!(lexed.tokens[own.next_token].line, 2);
    let trailing = &lexed.comments[1];
    assert!(!trailing.own_line);
    assert_eq!(trailing.line, 2);
}

#[test]
fn token_lines_are_accurate() {
    let src = "fn a() {}\n\nfn b() {\n    unwrap()\n}";
    let lexed = tokenize(src);
    let unwrap = lexed.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
    assert_eq!(unwrap.line, 4);
}
