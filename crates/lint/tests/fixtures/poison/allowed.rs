//! Justified-allow fixture: a best-effort cleanup whose failure is
//! provably harmless.

pub fn cleanup(vfs: &dyn Vfs, path: &Path) {
    // maybms-lint: allow(poison-discipline) -- best-effort removal of a stale temp file; failure leaves garbage, never wrong state
    let _ = vfs.remove_file(path);
}
