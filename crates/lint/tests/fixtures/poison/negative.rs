//! Negative fixture: every Result on the durability path is handled.

pub fn append(w: &mut Wal, rec: &[u8]) -> Result<()> {
    w.append(rec)?;
    w.sync().map_err(|e| io_err("sync WAL", e))?;
    Ok(())
}
