//! Positive fixture: a discarded Result on a durability path.

pub fn append(w: &mut Wal, rec: &[u8]) {
    let _ = w.append(rec);
}

pub fn sync(w: &mut Wal) {
    w.sync().ok();
}
