//! Positive fixture: a metric name lookup on what could be a hot path
//! (no OnceLock initializer in sight).

pub fn record(n: u64) {
    maybms_obs::counter("exec.rows").add(n);
}

pub fn observe(reg: &Registry) {
    registry().histogram("exec.latency").observe(1.0);
}
