//! Justified-allow fixture: a lookup on a cold path, waived.

pub fn cold_path(n: u64) {
    // maybms-lint: allow(obs-handle-discipline) -- error path, reached at most once per process
    maybms_obs::counter("exec.errors").add(n);
}
