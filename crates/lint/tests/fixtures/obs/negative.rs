//! Negative fixture: lookups live inside the OnceLock handle
//! initializer, the PR 8 hot-path shape.

fn metrics() -> &'static ExecMetrics {
    static M: OnceLock<ExecMetrics> = OnceLock::new();
    M.get_or_init(|| ExecMetrics {
        rows: maybms_obs::counter("exec.rows"),
        latency: registry().histogram("exec.latency"),
    })
}

pub fn record(n: u64) {
    metrics().rows.add(n);
}
