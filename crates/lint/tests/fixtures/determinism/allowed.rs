//! Justified-allow fixture: hash iteration whose order is erased by a
//! sort before anything escapes.

pub fn collect(map: HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut entries: Vec<(String, u64)> =
        // maybms-lint: allow(determinism) -- order is erased by the sort on the next line
        map.into_iter().collect();
    entries.sort();
    entries
}
