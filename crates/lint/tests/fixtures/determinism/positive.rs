//! Positive fixture: wall clock + hash-ordered iteration on a
//! deterministic path.

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn leak_order(map: HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, _v) in map {
        out.push(k);
    }
    out
}

pub fn leak_keys(index: HashMap<u64, u64>) -> usize {
    index.keys().count()
}
