//! Negative fixture: ordered structures iterate freely, and a name the
//! heuristic cannot tie to a hash type is not flagged.

pub fn sorted(map: &BTreeMap<String, u64>) -> Vec<(String, u64)> {
    map.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

pub fn walk(rows: &[u64]) -> u64 {
    let mut total = 0;
    for r in rows {
        total += *r;
    }
    total
}
