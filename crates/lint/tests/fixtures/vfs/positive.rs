//! Positive fixture: direct std::fs reaches around the Vfs boundary.

pub fn load(path: &std::path::Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_default()
}

pub fn open_raw(path: &std::path::Path) {
    let _o = OpenOptions::new().read(true).open(path);
}
