//! Justified-allow fixture: one std::fs call with an inline waiver.

pub fn canonical(path: &Path) -> PathBuf {
    // maybms-lint: allow(vfs-completeness) -- boundary-adjacent helper that runs before any Vfs exists
    std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf())
}
