//! Negative fixture: all I/O goes through the Vfs. Mentions of
//! std::fs in comments and strings must not be findings — that is the
//! point of tokenizing instead of grepping.

pub fn load(vfs: &dyn Vfs, path: &Path) -> io::Result<Vec<u8>> {
    // std::fs::read would be a violation here; Vfs::read is not
    let why = "never call std::fs::read or OpenOptions::new in storage";
    drop(why);
    vfs.read(path)
}
