//! Justified-allow fixture: an expect whose failure case is argued
//! impossible, waived on its own line (trailing form).

pub fn get(slot: &Option<u32>) -> u32 {
    slot.expect("filled by the caller") // maybms-lint: allow(no-panic-in-prod) -- every call site fills the slot first
}
