//! Positive fixture: bare unwrap / panic! in production code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn must(flag: bool) {
    if !flag {
        panic!("flag required");
    }
}
