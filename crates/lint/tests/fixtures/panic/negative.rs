//! Negative fixture: fallible code returns options/results, and test
//! code may unwrap freely.

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first(&[1]).unwrap(), 1);
        super::first(&[]).expect("empty slices have no first");
    }
}
