//! Fixture-based rule tests: one positive, one negative, and one
//! justified-allow fixture per rule, plus the directive semantics
//! (unjustified / unknown / unused allows are errors themselves).
//!
//! Fixtures live under `tests/fixtures/` — a directory name the
//! workspace walk skips, so planted violations never fail the real
//! lint run. Each fixture is linted *as if* it sat at a path inside the
//! rule's scope.

use maybms_lint::{lint_source, Diagnostic};

fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

// -------------------------------------------------------------- vfs --

#[test]
fn vfs_positive_flags_std_fs_and_openoptions() {
    let diags = lint_source(
        "crates/storage/src/fixture.rs",
        include_str!("fixtures/vfs/positive.rs"),
    );
    assert_eq!(lines_of(&diags, "vfs-completeness"), [4, 8], "{diags:?}");
}

#[test]
fn vfs_negative_ignores_comments_and_strings() {
    let diags = lint_source(
        "crates/storage/src/fixture.rs",
        include_str!("fixtures/vfs/negative.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn vfs_allowed_suppresses_with_justification() {
    let diags = lint_source(
        "crates/storage/src/fixture.rs",
        include_str!("fixtures/vfs/allowed.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn vfs_rule_is_scoped_to_storage_and_sql() {
    // the same violating source is clean outside the scoped crates
    let src = include_str!("fixtures/vfs/positive.rs");
    assert!(lines_of(&lint_source("crates/core/src/fixture.rs", src), "vfs-completeness").is_empty());
    // and vfs.rs itself is the legal home of std::fs
    assert!(lines_of(&lint_source("crates/storage/src/vfs.rs", src), "vfs-completeness").is_empty());
    // but sql is scoped
    assert_eq!(lines_of(&lint_source("crates/sql/src/fixture.rs", src), "vfs-completeness"), [4, 8]);
}

// ------------------------------------------------------ determinism --

#[test]
fn determinism_positive_flags_clock_and_hash_iteration() {
    let diags = lint_source(
        "crates/core/src/exec/fixture.rs",
        include_str!("fixtures/determinism/positive.rs"),
    );
    // Instant::now (5), `for … in map` (10), index.keys() (17)
    assert_eq!(lines_of(&diags, "determinism"), [5, 10, 17], "{diags:?}");
}

#[test]
fn determinism_negative_allows_ordered_iteration() {
    let diags = lint_source(
        "crates/core/src/exec/fixture.rs",
        include_str!("fixtures/determinism/negative.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn determinism_allowed_suppresses_sorted_collect() {
    let diags = lint_source(
        "crates/core/src/exec/fixture.rs",
        include_str!("fixtures/determinism/allowed.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ----------------------------------------------------------- poison --

#[test]
fn poison_positive_flags_discarded_results() {
    let diags = lint_source(
        "crates/storage/src/wal.rs",
        include_str!("fixtures/poison/positive.rs"),
    );
    // `let _ =` (4) and `.ok();` (8)
    assert_eq!(lines_of(&diags, "poison-discipline"), [4, 8], "{diags:?}");
}

#[test]
fn poison_negative_handled_results_are_clean() {
    let diags = lint_source(
        "crates/storage/src/wal.rs",
        include_str!("fixtures/poison/negative.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn poison_allowed_best_effort_cleanup() {
    let diags = lint_source(
        "crates/storage/src/wal.rs",
        include_str!("fixtures/poison/allowed.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------------ panic --

#[test]
fn panic_positive_flags_unwrap_and_panic() {
    let diags = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/panic/positive.rs"),
    );
    assert_eq!(lines_of(&diags, "no-panic-in-prod"), [4, 9], "{diags:?}");
}

#[test]
fn panic_negative_test_code_may_unwrap() {
    let diags = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/panic/negative.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_allowed_trailing_directive_covers_its_line() {
    let diags = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/panic/allowed.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// -------------------------------------------------------------- obs --

#[test]
fn obs_positive_flags_hot_path_lookups() {
    let diags = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/obs/positive.rs"),
    );
    assert_eq!(lines_of(&diags, "obs-handle-discipline"), [5, 9], "{diags:?}");
}

#[test]
fn obs_negative_oncelock_initializer_is_legal() {
    let diags = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/obs/negative.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn obs_allowed_cold_path_waiver() {
    let diags = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/obs/allowed.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------- directives --

#[test]
fn unjustified_allow_is_an_error() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // maybms-lint: allow(no-panic-in-prod)\n}\n";
    let diags = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "directive");
    assert!(diags[0].msg.contains("no justification"), "{}", diags[0].msg);
}

#[test]
fn unknown_rule_in_allow_is_an_error() {
    let src = "// maybms-lint: allow(no-such-rule) -- because\npub fn f() {}\n";
    let diags = lint_source("crates/core/src/fixture.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "directive" && d.msg.contains("unknown rule")),
        "{diags:?}"
    );
}

#[test]
fn unused_allow_is_an_error() {
    let src = "// maybms-lint: allow(no-panic-in-prod) -- nothing here panics\npub fn f() {}\n";
    let diags = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "directive");
    assert!(diags[0].msg.contains("unused"), "{}", diags[0].msg);
}

#[test]
fn doc_comments_never_carry_directives() {
    let src = "//! Example: `maybms-lint: allow(no-panic-in-prod) -- why`\npub fn f() {}\n";
    let diags = lint_source("crates/core/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allow_list_covers_multiple_rules() {
    let src = "pub fn f(w: &mut Wal) {\n    // maybms-lint: allow(poison-discipline, no-panic-in-prod) -- demo of a multi-rule waiver\n    let _ = w.append(b\"x\").unwrap();\n}\n";
    let diags = lint_source("crates/storage/src/wal.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn own_line_directive_does_not_leak_past_next_line() {
    // the directive covers line 3 only; the unwrap on line 4 still fires
    let src = "pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    // maybms-lint: allow(no-panic-in-prod) -- x is always set\n    let a = x.unwrap();\n    a + y.unwrap()\n}\n";
    let diags = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(lines_of(&diags, "no-panic-in-prod"), [4], "{diags:?}");
}
