//! End-to-end acceptance test: planting a forbidden pattern in a fake
//! workspace makes the `maybms-lint` *binary* exit nonzero and print
//! the offending `file:line`; a clean tree exits zero.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fake_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join(format!("maybms-lint-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("crates/storage/src")).unwrap();
    root
}

fn write(root: &Path, rel: &str, src: &str) {
    std::fs::write(root.join(rel), src).unwrap();
}

fn run_lint(root: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_maybms-lint"))
        .arg(root)
        .output()
        .expect("spawn maybms-lint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn seeded_violation_fails_with_file_and_line() {
    let root = fake_workspace("seeded");
    write(
        &root,
        "crates/storage/src/bad.rs",
        "//! A file that reaches around the Vfs.\n\npub fn sneak(p: &std::path::Path) -> Vec<u8> {\n    std::fs::read(p).unwrap_or_default()\n}\n",
    );
    let (ok, text) = run_lint(&root);
    assert!(!ok, "a seeded violation must make the binary exit nonzero:\n{text}");
    assert!(
        text.contains("error[vfs-completeness]: crates/storage/src/bad.rs:4:"),
        "diagnostic must carry the exact file:line:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn clean_tree_exits_zero() {
    let root = fake_workspace("clean");
    write(
        &root,
        "crates/storage/src/good.rs",
        "pub fn load(vfs: &dyn Vfs, p: &Path) -> io::Result<Vec<u8>> {\n    vfs.read(p)\n}\n",
    );
    let (ok, text) = run_lint(&root);
    assert!(ok, "a clean tree must exit zero:\n{text}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unjustified_allow_also_fails_the_binary() {
    let root = fake_workspace("unjust");
    write(
        &root,
        "crates/storage/src/waived.rs",
        "pub fn sneak(p: &Path) -> Vec<u8> {\n    // maybms-lint: allow(vfs-completeness)\n    std::fs::read(p).unwrap_or_default()\n}\n",
    );
    let (ok, text) = run_lint(&root);
    assert!(!ok, "an unjustified allow must fail the run:\n{text}");
    assert!(text.contains("error[directive]"), "{text}");
    let _ = std::fs::remove_dir_all(&root);
}
