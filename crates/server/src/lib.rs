//! # maybms-server
//!
//! A concurrent multi-session TCP server over one MayBMS database:
//! many connections, one durable [`Session`].
//!
//! The concurrency model (documented in depth in
//! `docs/ARCHITECTURE.md` §7):
//!
//! * **Reads are snapshot-isolated and lock-free.** The group-commit
//!   writer publishes an immutable, LSN-stamped
//!   [`WsdSnapshot`] after every durable
//!   batch; each connection's statements run on an `Arc`-shared view of
//!   the latest one. Readers never block the writer and never observe a
//!   half-applied commit group.
//! * **Writes funnel through one group committer.** Auto-commit
//!   mutations and `COMMIT`ed transactions are submitted to a single
//!   writer thread ([`maybms_sql::GroupCommitter`]) that coalesces concurrent
//!   groups into one WAL batch append and **one fsync**, acking each
//!   client only after the shared fsync. Committed history is serial by
//!   construction — the batch order is the serial order.
//! * **Failures fail loudly.** A failed batch append poisons the
//!   database; every in-flight and subsequent commit is NACKed with the
//!   poison reason, and reads keep serving the last published snapshot.
//!
//! One listener port serves three protocols, told apart by the first
//! bytes a client sends (see [`proto`]): `"MBSQ"` opens a SQL session,
//! `"GET "` is scraped as Prometheus metrics, and anything else is
//! handed to the WAL-shipping replica feed.
//!
//! ```no_run
//! use std::net::TcpListener;
//! use maybms_sql::Session;
//! use maybms_server::{Client, Server};
//!
//! let session = Session::open("demo.db").unwrap();
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let server = Server::serve(session, listener).unwrap();
//!
//! let mut c = Client::connect(server.addr()).unwrap();
//! c.query_ok("CREATE TABLE t (x INT)").unwrap();
//! println!("{}", c.query_ok("SHOW TABLES").unwrap().text);
//!
//! let session = server.shutdown().unwrap();
//! # drop(session);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;

mod conn;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use maybms_sql::replication::{peek_first_bytes, serve_metrics_http, Primary};
use maybms_sql::{CommitHandle, GroupCommitConfig, Session};

pub use maybms_sql::{CommitAck, WsdSnapshot};
pub use proto::{Client, ErrKind, Reply, ServerError};

/// Tuning knobs for [`Server::serve_with`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Group-commit batching parameters, forwarded to the writer thread.
    pub group: GroupCommitConfig,
    /// Serve the WAL-shipping replica feed on the same port (requires a
    /// durable session; ignored otherwise). Defaults to `false`.
    pub replica_feed: bool,
}

/// A running server: owns the accept thread, the per-connection
/// threads, and the group-commit writer. [`Server::shutdown`] returns
/// the underlying [`Session`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    committer: maybms_sql::GroupCommitter,
    primary: Option<Arc<Primary>>,
}

impl Server {
    /// Serves `listener` with default [`ServerConfig`].
    pub fn serve(session: Session, listener: TcpListener) -> io::Result<Server> {
        Server::serve_with(session, listener, ServerConfig::default())
    }

    /// Starts the group-commit writer and the accept loop. Connections
    /// are served on one thread each; the listener multiplexes SQL
    /// sessions, metrics scrapes, and (with `cfg.replica_feed`) the
    /// replica protocol by sniffing each connection's first bytes.
    pub fn serve_with(
        session: Session,
        listener: TcpListener,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let primary = match (&cfg.replica_feed, session.storage_path()) {
            (true, Some(path)) => Some(Arc::new(Primary::new(path))),
            _ => None,
        };
        let committer = maybms_sql::GroupCommitter::spawn_with(session, cfg.group);
        let handle = committer.handle();
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let primary = primary.clone();
            thread::Builder::new()
                .name("maybms-accept".into())
                .spawn(move || accept_loop(listener, handle, stop, conns, primary))?
        };

        Ok(Server { addr, stop, accept: Some(accept), conns, committer, primary })
    }

    /// The bound address — connect [`Client`]s here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for submitting commit groups / reading published
    /// snapshots in-process, bypassing the socket.
    pub fn commit_handle(&self) -> CommitHandle {
        self.committer.handle()
    }

    /// Stops accepting, drains every connection thread, shuts the
    /// group-commit writer down, and returns the underlying session
    /// (so the caller can e.g. `CHECKPOINT` or inspect final state).
    pub fn shutdown(mut self) -> io::Result<Session> {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(p) = &self.primary {
            p.stop();
        }
        if let Some(accept) = self.accept.take() {
            accept
                .join()
                .map_err(|_| io::Error::other("server accept thread panicked"))?;
        }
        let conns = std::mem::take(
            &mut *self
                .conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for c in conns {
            c.join()
                .map_err(|_| io::Error::other("server connection thread panicked"))?;
        }
        Ok(self.committer.shutdown())
    }
}

/// Accepts connections and routes each by its first bytes: HTTP
/// metrics scrape, SQL session, or replica feed.
fn accept_loop(
    listener: TcpListener,
    handle: CommitHandle,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    primary: Option<Arc<Primary>>,
) {
    while !stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
                continue;
            }
            // transient accept errors (ECONNABORTED, …): keep serving
            Err(_) => continue,
        };
        let spawned = route(stream, &handle, &stop, &primary);
        if let Some(join) = spawned {
            let mut guard = conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // opportunistically reap finished threads so a long-lived
            // server doesn't accumulate handles
            guard.retain(|j: &JoinHandle<()>| !j.is_finished());
            guard.push(join);
        }
    }
}

/// Sniffs one connection's first bytes and spawns its handler.
fn route(
    stream: TcpStream,
    handle: &CommitHandle,
    stop: &Arc<AtomicBool>,
    primary: &Option<Arc<Primary>>,
) -> Option<JoinHandle<()>> {
    // the listener is non-blocking; handlers want blocking I/O
    if stream.set_nonblocking(false).is_err() {
        return None;
    }
    match peek_first_bytes(&stream) {
        Some(four) if four == *b"GET " => thread::Builder::new()
            .name("maybms-metrics".into())
            .spawn(move || {
                let _ = serve_metrics_http(stream);
            })
            .ok(),
        Some(four) if four == proto::PROTO_MAGIC => {
            let handle = handle.clone();
            let stop = Arc::clone(stop);
            thread::Builder::new()
                .name("maybms-conn".into())
                .spawn(move || {
                    let mut stream = stream;
                    let mut magic = [0u8; 4];
                    if io::Read::read_exact(&mut stream, &mut magic).is_ok() {
                        let _ = conn::handle_conn(stream, handle, stop);
                    }
                })
                .ok()
        }
        _ => {
            // anything else is a replica saying hello (its first frame
            // is a length header, which collides with neither magic);
            // serve threads exit on `Primary::stop`, so they are
            // detached rather than tracked in `conns`
            if let Some(p) = primary {
                let _ = p.spawn_serve(stream);
            }
            None
        }
    }
}
