//! The SQL session wire protocol: length-framed, CRC-checked
//! request/response messages, plus the blocking [`Client`].
//!
//! # Framing
//!
//! The stream opens with the 4-byte magic [`PROTO_MAGIC`] (`"MBSQ"`),
//! which is what the server's listener sniffs to tell a SQL session
//! apart from an HTTP metrics scrape (`"GET "`) and the WAL-shipping
//! replica protocol (whose first frame can start with neither). After
//! the magic, both directions speak frames identical in shape to
//! `maybms_storage::ship`:
//!
//! ```text
//! | len: u32 LE | crc32(payload): u32 LE | payload: len bytes |
//! ```
//!
//! `len` is bounded by [`MAX_FRAME_LEN`] *before* any allocation — the
//! length field itself is outside the checksum, so an implausible value
//! must never size a buffer. The payload begins with
//! [`PROTO_VERSION`] and a tag byte; strings are `u32 LE` length +
//! UTF-8 bytes.
//!
//! # Messages
//!
//! | dir | tag | message |
//! |-----|-----|---------|
//! | →   | 1   | [`Request::Query`] — one SQL statement |
//! | ←   | 2   | [`Response::Hello`] — connection accepted, server LSN |
//! | ←   | 3   | [`Response::Ok`] — rendered result + snapshot LSN |
//! | ←   | 4   | [`Response::Err`] — error kind + message |
//!
//! Every `Ok` carries the LSN of the snapshot the statement observed
//! (or, for a commit, the LSN its group was assigned) — isolation tests
//! pin their assertions to these.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use maybms_storage::crc::crc32;

/// First bytes on the wire, before any frame: how the multiplexed
/// listener recognizes this protocol.
pub const PROTO_MAGIC: [u8; 4] = *b"MBSQ";

/// Protocol version, the first byte of every frame payload.
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on a frame's claimed payload length. The length field is
/// not covered by the checksum (it sizes the read of the bytes that
/// are), so it is bounds-checked before any allocation.
pub const MAX_FRAME_LEN: usize = 1 << 30;

const TAG_QUERY: u8 = 1;
const TAG_HELLO: u8 = 2;
const TAG_OK: u8 = 3;
const TAG_ERR: u8 = 4;

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute one SQL statement (statement text, no trailing `;`).
    Query {
        /// The SQL text.
        sql: String,
    },
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Sent once after the magic: the connection is live.
    Hello {
        /// The server's last committed LSN at accept time.
        lsn: u64,
    },
    /// The statement succeeded.
    Ok {
        /// The LSN of the snapshot the statement observed — or, for a
        /// committed mutation, the LSN its commit group was assigned.
        lsn: u64,
        /// The rendered result (tables in `maybms_relational::pretty`
        /// form, acknowledgements as one line).
        text: String,
    },
    /// The statement failed; the connection stays usable.
    Err {
        /// Coarse error class — see [`ErrKind`].
        kind: u8,
        /// Human-readable error, stable enough to assert on.
        message: String,
    },
}

/// Coarse error classes carried in [`Response::Err`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrKind {
    /// Lex/parse failure.
    Parse = 1,
    /// Planning failure (unknown relation/column, …).
    Plan = 2,
    /// Execution failure (type error, unsatisfiable repair, …).
    Execute = 3,
    /// The durable store failed — includes poisoned-database refusals
    /// and NACKed group commits.
    Storage = 4,
    /// The session is degraded to read-only (failed checkpoint).
    Degraded = 5,
    /// Transaction-control misuse (nested `BEGIN`, stray `COMMIT`, …).
    Transaction = 6,
    /// The statement is not supported over the server protocol.
    Unsupported = 7,
}

/// Writes one frame: length, checksum, payload.
pub fn send_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame, validating length bound and checksum.
pub fn recv_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(bad_data(format!(
            "frame claims {len} bytes (max {MAX_FRAME_LEN}); stream corrupt or not MBSQ"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(bad_data("frame checksum mismatch".into()));
    }
    Ok(payload)
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(bad_data("message truncated".into()));
        };
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME_LEN {
            return Err(bad_data("string length implausible".into()));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad_data("string not UTF-8".into()))
    }

    fn done(&self) -> io::Result<()> {
        if self.at != self.buf.len() {
            return Err(bad_data("trailing bytes after message".into()));
        }
        Ok(())
    }
}

fn check_version(c: &mut Cursor<'_>) -> io::Result<u8> {
    let version = c.u8()?;
    if version != PROTO_VERSION {
        return Err(bad_data(format!(
            "protocol version {version} (this build speaks {PROTO_VERSION})"
        )));
    }
    c.u8()
}

/// Sends one request as a frame.
pub fn send_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    let mut payload = vec![PROTO_VERSION];
    match req {
        Request::Query { sql } => {
            payload.push(TAG_QUERY);
            put_str(&mut payload, sql);
        }
    }
    send_frame(w, &payload)
}

/// Receives one request frame.
pub fn recv_request<R: Read>(r: &mut R) -> io::Result<Request> {
    let payload = recv_frame(r)?;
    let mut c = Cursor { buf: &payload, at: 0 };
    let tag = check_version(&mut c)?;
    let req = match tag {
        TAG_QUERY => Request::Query { sql: c.string()? },
        other => return Err(bad_data(format!("unknown request tag {other}"))),
    };
    c.done()?;
    Ok(req)
}

/// Sends one response as a frame.
pub fn send_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    let mut payload = vec![PROTO_VERSION];
    match resp {
        Response::Hello { lsn } => {
            payload.push(TAG_HELLO);
            payload.extend_from_slice(&lsn.to_le_bytes());
        }
        Response::Ok { lsn, text } => {
            payload.push(TAG_OK);
            payload.extend_from_slice(&lsn.to_le_bytes());
            put_str(&mut payload, text);
        }
        Response::Err { kind, message } => {
            payload.push(TAG_ERR);
            payload.push(*kind);
            put_str(&mut payload, message);
        }
    }
    send_frame(w, &payload)
}

/// Receives one response frame.
pub fn recv_response<R: Read>(r: &mut R) -> io::Result<Response> {
    let payload = recv_frame(r)?;
    let mut c = Cursor { buf: &payload, at: 0 };
    let tag = check_version(&mut c)?;
    let resp = match tag {
        TAG_HELLO => Response::Hello { lsn: c.u64()? },
        TAG_OK => Response::Ok { lsn: c.u64()?, text: c.string()? },
        TAG_ERR => Response::Err { kind: c.u8()?, message: c.string()? },
        other => return Err(bad_data(format!("unknown response tag {other}"))),
    };
    c.done()?;
    Ok(resp)
}

/// A successful statement's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The snapshot (or commit) LSN — see [`Response::Ok`].
    pub lsn: u64,
    /// The rendered result.
    pub text: String,
}

/// A server-side statement failure, as the client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// The coarse class, one of [`ErrKind`]'s discriminants.
    pub kind: u8,
    /// The server's error message.
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server error (kind {}): {}", self.kind, self.message)
    }
}

impl std::error::Error for ServerError {}

/// A blocking client connection: one statement in flight at a time.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    hello_lsn: u64,
}

impl Client {
    /// Connects, sends the magic, and waits for the server's hello.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&PROTO_MAGIC)?;
        stream.flush()?;
        match recv_response(&mut stream)? {
            Response::Hello { lsn } => Ok(Client { stream, hello_lsn: lsn }),
            other => Err(bad_data(format!("expected Hello, got {other:?}"))),
        }
    }

    /// The server's last committed LSN when this connection was
    /// accepted.
    pub fn hello_lsn(&self) -> u64 {
        self.hello_lsn
    }

    /// Executes one SQL statement. The outer error is transport-level
    /// (connection gone); the inner one is the statement failing on the
    /// server, after which the connection remains usable.
    pub fn query(&mut self, sql: &str) -> io::Result<Result<Reply, ServerError>> {
        send_request(&mut self.stream, &Request::Query { sql: sql.to_string() })?;
        match recv_response(&mut self.stream)? {
            Response::Ok { lsn, text } => Ok(Ok(Reply { lsn, text })),
            Response::Err { kind, message } => Ok(Err(ServerError { kind, message })),
            other => Err(bad_data(format!("expected Ok/Err, got {other:?}"))),
        }
    }

    /// [`Client::query`] flattened: any failure becomes `io::Error`.
    pub fn query_ok(&mut self, sql: &str) -> io::Result<Reply> {
        self.query(sql)?
            .map_err(|e| io::Error::other(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_response(resp: &Response) -> Response {
        let mut buf = Vec::new();
        send_response(&mut buf, resp).expect("send");
        recv_response(&mut &buf[..]).expect("recv")
    }

    #[test]
    fn messages_roundtrip() {
        let req = Request::Query { sql: "SELECT name FROM t".into() };
        let mut buf = Vec::new();
        send_request(&mut buf, &req).expect("send");
        assert_eq!(recv_request(&mut &buf[..]).expect("recv"), req);

        for resp in [
            Response::Hello { lsn: 7 },
            Response::Ok { lsn: 42, text: "inserted 1 tuple(s) into t".into() },
            Response::Err { kind: ErrKind::Parse as u8, message: "bad".into() },
        ] {
            assert_eq!(roundtrip_response(&resp), resp);
        }
    }

    #[test]
    fn torn_and_corrupt_frames_are_rejected() {
        let mut buf = Vec::new();
        send_response(&mut buf, &Response::Hello { lsn: 9 }).expect("send");
        // every truncation point fails cleanly
        for cut in 0..buf.len() {
            assert!(recv_response(&mut &buf[..cut]).is_err(), "cut at {cut} accepted");
        }
        // a payload bit-flip fails the checksum
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(recv_response(&mut &flipped[..]).is_err());
        // an implausible length field is rejected before allocation
        let mut huge = buf;
        huge[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(recv_response(&mut &huge[..]).is_err());
    }
}
