//! Per-connection session logic: snapshot-isolated reads, transactions
//! that commit through the shared [`CommitHandle`].
//!
//! Every connection owns a **read view** — a [`Session`] whose
//! decomposition is an `Arc` share of a published [`WsdSnapshot`] —
//! refreshed from the group committer before each auto-commit
//! statement. Reads never take a lock the writer holds and never see a
//! commit group's effects partially applied: a snapshot is published
//! only after its batch's shared fsync.
//!
//! `BEGIN` switches the connection to a **private writable session**
//! forked from the current snapshot. Mutations execute there first (so
//! the transaction reads its own writes) and are recorded; `COMMIT`
//! submits the recorded statements to the group committer, which
//! re-executes them serially against the durable state — the commit
//! order, not the `BEGIN` order, is the serial order. A NACK (conflict
//! with the durable state, storage failure, poison) reaches the client
//! as an error and the transaction is gone.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use maybms_obs::{counter, gauge, Counter, Gauge};
use maybms_relational::pretty;
use maybms_sql::{parse, CommitHandle, QueryResult, Session, SessionError, Statement};

use crate::proto::{self, ErrKind, Request, Response};

/// Rows shown before a tabular result is truncated with an ellipsis.
const RENDER_ROW_LIMIT: usize = 1000;

struct ConnMetrics {
    connections: Arc<Gauge>,
    requests: Arc<Counter>,
}

fn metrics() -> &'static ConnMetrics {
    static METRICS: OnceLock<ConnMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ConnMetrics {
        connections: gauge("server.connections"),
        requests: counter("server.requests"),
    })
}

/// Decrements `server.connections` even when the handler errors out.
struct ConnGauge;

impl ConnGauge {
    fn new() -> ConnGauge {
        metrics().connections.add(1);
        ConnGauge
    }
}

impl Drop for ConnGauge {
    fn drop(&mut self) {
        metrics().connections.add(-1);
    }
}

/// An open explicit transaction on one connection.
struct Txn {
    /// Private writable fork of the snapshot current at `BEGIN`; the
    /// transaction's preview — reads here see its own writes.
    sess: Session,
    /// The LSN of that snapshot, reported for in-transaction replies.
    base_lsn: u64,
    /// Mutations recorded in execution order; what `COMMIT` submits.
    stmts: Vec<Statement>,
    /// Savepoint marks: name and the recorded-statement count at the
    /// time, so `ROLLBACK TO` can truncate the submission.
    marks: Vec<(String, usize)>,
}

/// Serves one SQL connection until EOF, protocol error, or server stop.
/// The caller has already consumed the 4-byte magic.
pub(crate) fn handle_conn(
    mut stream: TcpStream,
    handle: CommitHandle,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    let _gauge = ConnGauge::new();
    stream.set_nodelay(true)?;
    // poll the stop flag between requests instead of blocking forever
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;

    let first = handle.snapshot();
    let mut view = Session::view_at(&first);
    let mut view_lsn = first.lsn();
    proto::send_response(&mut stream, &Response::Hello { lsn: view_lsn })?;

    let mut txn: Option<Txn> = None;
    loop {
        let req = match proto::recv_request(&mut stream) {
            Ok(req) => req,
            Err(e) if timed_out(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        metrics().requests.inc();
        let Request::Query { sql } = req;
        let resp = dispatch(&sql, &handle, &mut view, &mut view_lsn, &mut txn);
        proto::send_response(&mut stream, &resp)?;
    }
}

fn timed_out(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Executes one statement in the connection's current mode and builds
/// the wire response.
fn dispatch(
    sql: &str,
    handle: &CommitHandle,
    view: &mut Session,
    view_lsn: &mut u64,
    txn: &mut Option<Txn>,
) -> Response {
    let stmt = match parse(sql) {
        Ok(stmt) => stmt,
        Err(source) => {
            return err_response(&SessionError::Parse { sql: sql.to_string(), source });
        }
    };
    match stmt {
        Statement::Begin => {
            if txn.is_some() {
                return txn_err("transaction already open (no nested BEGIN)");
            }
            let snap = handle.snapshot();
            let mut sess = Session::writable_at(&snap);
            if let Err(e) = sess.run(&Statement::Begin) {
                return err_response(&e);
            }
            let base_lsn = snap.lsn();
            *txn = Some(Txn { sess, base_lsn, stmts: Vec::new(), marks: Vec::new() });
            Response::Ok { lsn: base_lsn, text: "BEGIN".into() }
        }
        Statement::Commit => {
            let Some(t) = txn.take() else {
                return txn_err("COMMIT without a transaction");
            };
            if t.stmts.is_empty() {
                // nothing to make durable; the empty group is not submitted
                return Response::Ok { lsn: *view_lsn, text: "COMMIT".into() };
            }
            match handle.commit(t.stmts) {
                Ok(ack) => {
                    install(view, view_lsn, &ack.snapshot);
                    Response::Ok { lsn: ack.lsn, text: "COMMIT".into() }
                }
                Err(e) => err_response(&e),
            }
        }
        Statement::Rollback => {
            if txn.take().is_none() {
                return txn_err("ROLLBACK without a transaction");
            }
            Response::Ok { lsn: *view_lsn, text: "ROLLBACK".into() }
        }
        Statement::Savepoint { ref name } => match txn.as_mut() {
            None => txn_err("SAVEPOINT without a transaction"),
            Some(t) => match t.sess.run(&stmt) {
                Ok(r) => {
                    t.marks.push((name.clone(), t.stmts.len()));
                    Response::Ok { lsn: t.base_lsn, text: render(&r) }
                }
                Err(e) => err_response(&e),
            },
        },
        Statement::RollbackTo { ref name } => match txn.as_mut() {
            None => txn_err("ROLLBACK TO without a transaction"),
            Some(t) => match t.sess.run(&stmt) {
                Ok(r) => {
                    // the private session validated the savepoint exists;
                    // mirror its truncation on the recorded submission
                    let at = t
                        .marks
                        .iter()
                        .rposition(|(n, _)| n == name)
                        .map(|i| {
                            let keep = t.marks[i].1;
                            t.marks.truncate(i + 1);
                            keep
                        })
                        .unwrap_or(0);
                    t.stmts.truncate(at);
                    Response::Ok { lsn: t.base_lsn, text: render(&r) }
                }
                Err(e) => err_response(&e),
            },
        },
        Statement::Checkpoint { .. } => Response::Err {
            kind: ErrKind::Unsupported as u8,
            message: "CHECKPOINT is not available over the server protocol \
                      (it compacts the shared database; run it on the server process)"
                .into(),
        },
        ref s if maybms_sql::wire::is_mutation(s) => match txn.as_mut() {
            // inside a transaction: preview on the private session,
            // record for COMMIT-time submission
            Some(t) => match t.sess.run(&stmt) {
                Ok(r) => {
                    t.stmts.push(stmt.clone());
                    Response::Ok { lsn: t.base_lsn, text: render(&r) }
                }
                Err(e) => err_response(&e),
            },
            // auto-commit: a one-statement commit group
            None => match handle.commit(vec![stmt]) {
                Ok(ack) => {
                    install(view, view_lsn, &ack.snapshot);
                    let text = ack.results.first().map(render).unwrap_or_default();
                    Response::Ok { lsn: ack.lsn, text }
                }
                Err(e) => err_response(&e),
            },
        },
        // reads: inside a transaction they see its writes; otherwise they
        // run on the freshest published snapshot
        _ => match txn.as_mut() {
            Some(t) => match t.sess.run(&stmt) {
                Ok(r) => Response::Ok { lsn: t.base_lsn, text: render(&r) },
                Err(e) => err_response(&e),
            },
            None => {
                install(view, view_lsn, &handle.snapshot());
                match view.run(&stmt) {
                    Ok(r) => Response::Ok { lsn: *view_lsn, text: render(&r) },
                    Err(e) => err_response(&e),
                }
            }
        },
    }
}

fn install(view: &mut Session, view_lsn: &mut u64, snap: &maybms_sql::WsdSnapshot) {
    // the view session never opens a transaction, so this cannot fail;
    // fall back to a fresh view if it somehow does
    if view.install_snapshot(snap).is_err() {
        *view = Session::view_at(snap);
    }
    *view_lsn = snap.lsn();
}

fn txn_err(message: &str) -> Response {
    Response::Err {
        kind: ErrKind::Transaction as u8,
        message: format!("transaction error: {message}"),
    }
}

fn err_response(e: &SessionError) -> Response {
    Response::Err { kind: err_kind(e) as u8, message: e.to_string() }
}

fn err_kind(e: &SessionError) -> ErrKind {
    match e {
        SessionError::Parse { .. } => ErrKind::Parse,
        SessionError::Plan { .. } => ErrKind::Plan,
        SessionError::Execute { .. } => ErrKind::Execute,
        SessionError::Storage { .. } => ErrKind::Storage,
        SessionError::Degraded { .. } => ErrKind::Degraded,
        SessionError::Transaction { .. } => ErrKind::Transaction,
        SessionError::ReadOnlyReplica { .. } => ErrKind::Unsupported,
    }
}

/// Renders a result the way `examples/sql_shell.rs` prints it, so the
/// wire text matches what users see locally.
fn render(r: &QueryResult) -> String {
    match r {
        QueryResult::Table(t) => pretty::render(t, RENDER_ROW_LIMIT),
        QueryResult::WorldSet(w) => {
            let stats = w.stats();
            let mut out = format!(
                "answer world-set: {} tuple template(s), {} component(s), {} worlds\n",
                stats.template_tuples,
                stats.components,
                w.world_count()
            );
            match w.tuple_confidence("result") {
                Ok(conf) => {
                    for (t, p) in conf {
                        out.push_str(&format!("  {t}  p={p:.4}\n"));
                    }
                }
                Err(e) => out.push_str(&format!("  (confidence unavailable: {e})\n")),
            }
            out
        }
        QueryResult::Text(t) => t.clone(),
    }
}
