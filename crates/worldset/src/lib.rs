//! # maybms-worldset
//!
//! The *explicit* possible-worlds engine. A world-set is stored as a list of
//! ordinary databases with probabilities — exactly the semantics that
//! world-set decompositions compress. This crate serves two roles in the
//! reproduction:
//!
//! 1. **Correctness oracle.** Every WSD algebra operation in `maybms-core`
//!    must commute with world enumeration: running a query on the
//!    decomposition and then enumerating worlds must equal enumerating
//!    worlds and running the query in each. The property tests pin this.
//! 2. **Baseline.** The paper's E3 experiment compares query evaluation on
//!    the decomposition against "conventional query processing (that is, of
//!    processing a single world using standard database techniques)" — the
//!    single-world path lives here.
//!
//! It also defines [`orset::OrSetRelation`], the attribute-level or-set
//! relations used to inject noise into the census data (E1), and utilities
//! for possible/certain answers and tuple confidence computed by brute
//! force.

#![forbid(unsafe_code)]

pub mod enumerate;
pub mod eval;
pub mod orset;
pub mod world;

pub use enumerate::EnumerateOptions;
pub use orset::{OrSetCell, OrSetRelation};
pub use world::{World, WorldSet};
