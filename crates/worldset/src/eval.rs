//! Per-world query evaluation: the semantics every WSD operator must match.
//!
//! "The semantics of query evaluation on world-sets is to evaluate the query
//! in each of the worlds." (paper, §2)

use maybms_relational::{ops, Expr, Relation, Result};

use crate::world::{World, WorldSet};

/// A tiny algebra-over-worlds AST, mirroring the WSD algebra in
/// `maybms-core` so that oracle tests can run *the same* query both ways.
#[derive(Debug, Clone)]
pub enum WorldQuery {
    /// Base relation by name.
    Table(String),
    Select(Box<WorldQuery>, Expr),
    Project(Box<WorldQuery>, Vec<String>),
    Product(Box<WorldQuery>, Box<WorldQuery>),
    Join(Box<WorldQuery>, Box<WorldQuery>, Expr),
    Union(Box<WorldQuery>, Box<WorldQuery>),
    Difference(Box<WorldQuery>, Box<WorldQuery>),
    Distinct(Box<WorldQuery>),
    Rename(Box<WorldQuery>, String, String),
    Qualify(Box<WorldQuery>, String),
}

impl WorldQuery {
    pub fn table(name: impl Into<String>) -> WorldQuery {
        WorldQuery::Table(name.into())
    }

    /// Evaluates the query inside one world.
    pub fn eval(&self, w: &World) -> Result<Relation> {
        use maybms_relational::Error;
        Ok(match self {
            WorldQuery::Table(n) => w
                .get(n)
                .ok_or_else(|| Error::UnknownRelation(n.clone()))?
                .clone(),
            WorldQuery::Select(q, pred) => ops::select(&q.eval(w)?, pred)?,
            WorldQuery::Project(q, cols) => {
                let r = q.eval(w)?;
                let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                ops::project(&r, &names)?
            }
            WorldQuery::Product(a, b) => ops::product(&a.eval(w)?, &b.eval(w)?),
            WorldQuery::Join(a, b, pred) => ops::theta_join(&a.eval(w)?, &b.eval(w)?, pred)?,
            WorldQuery::Union(a, b) => ops::union(&a.eval(w)?, &b.eval(w)?)?,
            WorldQuery::Difference(a, b) => ops::difference(&a.eval(w)?, &b.eval(w)?)?,
            WorldQuery::Distinct(q) => ops::distinct(&q.eval(w)?),
            WorldQuery::Rename(q, from, to) => ops::rename(&q.eval(w)?, from, to)?,
            WorldQuery::Qualify(q, prefix) => ops::qualify(&q.eval(w)?, prefix),
        })
    }
}

/// Evaluates a query in every world of the set, producing the answer
/// world-set (relation name: `"result"`).
pub fn eval_in_all_worlds(ws: &WorldSet, q: &WorldQuery) -> Result<WorldSet> {
    ws.map(|w| Ok(World::single("result", q.eval(w)?)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_relational::{ColumnType, Schema, Value};

    fn medical_world(diag: &str, test: &str, symptom: &str) -> World {
        let mut r = Relation::empty(Schema::new(vec![
            ("diagnosis", ColumnType::Str),
            ("test", ColumnType::Str),
            ("symptom", ColumnType::Str),
        ]));
        r.push_values(vec![Value::str(diag), Value::str(test), Value::str(symptom)])
            .unwrap();
        World::single("R", r)
    }

    /// The paper's §2 example evaluated explicitly: four worlds, query
    /// `select Test from R where Diagnosis='pregnancy'`; the ultrasound
    /// answer has total probability 0.4.
    #[test]
    fn paper_query_in_explicit_worlds() {
        let ws = WorldSet::new(vec![
            (medical_world("pregnancy", "ultrasound", "weight gain"), 0.4 * 0.7),
            (medical_world("pregnancy", "ultrasound", "fatigue"), 0.4 * 0.3),
            (medical_world("hypothyroidism", "TSH", "weight gain"), 0.6 * 0.7),
            (medical_world("hypothyroidism", "TSH", "fatigue"), 0.6 * 0.3),
        ]);
        ws.validate().unwrap();

        let q = WorldQuery::Project(
            Box::new(WorldQuery::Select(
                Box::new(WorldQuery::table("R")),
                Expr::col("diagnosis").eq(Expr::lit("pregnancy")),
            )),
            vec!["test".to_string()],
        );
        let ans = eval_in_all_worlds(&ws, &q).unwrap();
        let conf = ans.tuple_confidence("result");
        assert_eq!(conf.len(), 1);
        assert_eq!(conf[0].0[0], Value::str("ultrasound"));
        assert!((conf[0].1 - 0.4).abs() < 1e-12);
        // The merged answer world-set has 2 distinct worlds: {ultrasound} and {}.
        assert_eq!(ans.merged().len(), 2);
    }

    #[test]
    fn unknown_table_errors() {
        let ws = WorldSet::certain(World::new());
        let q = WorldQuery::table("missing");
        assert!(eval_in_all_worlds(&ws, &q).is_err());
    }

    #[test]
    fn compound_query() {
        let mut r = Relation::empty(Schema::new(vec![("a", ColumnType::Int)]));
        r.push_values(vec![Value::Int(1)]).unwrap();
        r.push_values(vec![Value::Int(2)]).unwrap();
        let mut s = Relation::empty(Schema::new(vec![("b", ColumnType::Int)]));
        s.push_values(vec![Value::Int(2)]).unwrap();
        let mut w = World::new();
        w.put("r", r);
        w.put("s", s);

        let q = WorldQuery::Join(
            Box::new(WorldQuery::table("r")),
            Box::new(WorldQuery::table("s")),
            Expr::col("a").eq(Expr::col("b")),
        );
        let out = q.eval(&w).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].values(), &[Value::Int(2), Value::Int(2)]);
    }
}
