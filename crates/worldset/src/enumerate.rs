//! Expanding or-set relations into explicit world-sets.
//!
//! Expansion is exponential by design — that is precisely the blow-up that
//! world-set decompositions avoid — so it is guarded by a configurable cap
//! and only used at oracle/test scale.

use maybms_relational::{Error, Relation, Result, Tuple};

use crate::orset::OrSetRelation;
use crate::world::{World, WorldSet};

/// Limits for explicit enumeration.
#[derive(Debug, Clone, Copy)]
pub struct EnumerateOptions {
    /// Maximum number of worlds to materialize before giving up.
    pub max_worlds: usize,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions { max_worlds: 1 << 20 }
    }
}

/// Expands an or-set relation into the explicit set of its possible worlds
/// (each world is a single relation named `rel_name`).
///
/// World probabilities multiply the chosen alternatives' probabilities —
/// the independent-choice semantics of attribute-level or-sets.
pub fn expand(os: &OrSetRelation, rel_name: &str, opts: EnumerateOptions) -> Result<WorldSet> {
    // Collect choice points: (row, col, #alternatives).
    let mut choice_points: Vec<(usize, usize)> = Vec::new();
    let mut count: f64 = 1.0;
    for (i, row) in os.rows().iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            if !cell.is_certain() {
                choice_points.push((i, j));
                count *= cell.width() as f64;
                if count > opts.max_worlds as f64 {
                    return Err(Error::InvalidExpr(format!(
                        "world-set too large to enumerate (> {} worlds)",
                        opts.max_worlds
                    )));
                }
            }
        }
    }

    // Base tuples: first alternative everywhere; choices overwrite.
    let base: Vec<Vec<maybms_relational::Value>> = os
        .rows()
        .iter()
        .map(|row| row.iter().map(|c| c.alternatives()[0].0.clone()).collect())
        .collect();

    let mut worlds = WorldSet::default();
    // Odometer over the choice points.
    let widths: Vec<usize> = choice_points
        .iter()
        .map(|&(i, j)| os.cell(i, j).width())
        .collect();
    let mut idx = vec![0usize; choice_points.len()];
    loop {
        let mut rows = base.clone();
        let mut p = 1.0;
        for (k, &(i, j)) in choice_points.iter().enumerate() {
            let (v, q) = &os.cell(i, j).alternatives()[idx[k]];
            rows[i][j] = v.clone();
            p *= q;
        }
        let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
        let rel = Relation::from_rows_unchecked(os.schema().clone(), tuples);
        worlds.push(World::single(rel_name, rel), p);

        // Advance odometer.
        let mut k = choice_points.len();
        loop {
            if k == 0 {
                return Ok(worlds);
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < widths[k] {
                break;
            }
            idx[k] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orset::OrSetCell;
    use maybms_relational::{ColumnType, Schema, Value};

    fn two_by_two() -> OrSetRelation {
        let mut os = OrSetRelation::empty(Schema::new(vec![
            ("a", ColumnType::Int),
            ("b", ColumnType::Str),
        ]));
        os.push(vec![
            OrSetCell::weighted(vec![(Value::Int(1), 0.4), (Value::Int(2), 0.6)]).unwrap(),
            OrSetCell::certain("x"),
        ])
        .unwrap();
        os.push(vec![
            OrSetCell::certain(9i64),
            OrSetCell::uniform(vec![Value::str("p"), Value::str("q")]).unwrap(),
        ])
        .unwrap();
        os
    }

    #[test]
    fn expands_all_combinations() {
        let ws = expand(&two_by_two(), "r", EnumerateOptions::default()).unwrap();
        assert_eq!(ws.len(), 4);
        ws.validate().unwrap();
        // probabilities: 0.4*0.5, 0.4*0.5, 0.6*0.5, 0.6*0.5
        let mut ps: Vec<f64> = ws.worlds().iter().map(|(_, p)| *p).collect();
        ps.sort_by(f64::total_cmp);
        assert!((ps[0] - 0.2).abs() < 1e-12);
        assert!((ps[3] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn certain_relation_is_one_world() {
        let mut os = OrSetRelation::empty(Schema::new(vec![("a", ColumnType::Int)]));
        os.push(vec![OrSetCell::certain(1i64)]).unwrap();
        let ws = expand(&os, "r", EnumerateOptions::default()).unwrap();
        assert_eq!(ws.len(), 1);
        assert!((ws.worlds()[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cap_is_enforced() {
        let mut os = OrSetRelation::empty(Schema::new(vec![("a", ColumnType::Int)]));
        for _ in 0..40 {
            os.push(vec![OrSetCell::uniform(vec![Value::Int(0), Value::Int(1)]).unwrap()])
                .unwrap();
        }
        let err = expand(&os, "r", EnumerateOptions { max_worlds: 1000 });
        assert!(err.is_err());
    }

    #[test]
    fn empty_relation_has_one_empty_world() {
        let os = OrSetRelation::empty(Schema::new(vec![("a", ColumnType::Int)]));
        let ws = expand(&os, "r", EnumerateOptions::default()).unwrap();
        assert_eq!(ws.len(), 1);
        assert!(ws.worlds()[0].0.get("r").unwrap().is_empty());
    }
}
