//! Explicit worlds and world-sets.

use std::collections::BTreeMap;

use maybms_relational::{Relation, Result, Tuple, Value};

/// One possible world: a complete database (name → relation).
/// Worlds compare by *canonical* (sorted, set-semantics) relation content,
/// matching the paper's set-based world semantics.
#[derive(Debug, Clone, Default)]
pub struct World {
    relations: BTreeMap<String, Relation>,
}

impl World {
    pub fn new() -> World {
        World::default()
    }

    /// A world holding a single relation named `name`.
    pub fn single(name: impl Into<String>, r: Relation) -> World {
        let mut w = World::new();
        w.put(name, r);
        w
    }

    pub fn put(&mut self, name: impl Into<String>, r: Relation) {
        self.relations.insert(name.into(), r);
    }

    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    pub fn relations(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Canonical form: every relation sorted and deduplicated. Two worlds
    /// are "the same world" iff their canonical forms are equal.
    pub fn canonical(&self) -> World {
        World {
            relations: self
                .relations
                .iter()
                .map(|(k, v)| (k.clone(), v.canonical()))
                .collect(),
        }
    }

    /// A canonical key usable for hashing/grouping worlds.
    pub fn canonical_key(&self) -> WorldKey {
        self.canonical()
            .relations
            .into_iter()
            .map(|(k, v)| {
                let mut rows = v.rows().to_vec();
                rows.sort();
                (k, rows)
            })
            .collect()
    }
}

impl PartialEq for World {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_key() == other.canonical_key()
    }
}
impl Eq for World {}

/// The canonical key of a world: per relation, its sorted distinct tuples.
pub type WorldKey = Vec<(String, Vec<Tuple>)>;

/// A finite set of possible worlds with probabilities.
///
/// Invariant (checked by [`WorldSet::validate`]): probabilities are positive
/// and sum to 1 within tolerance.
#[derive(Debug, Clone, Default)]
pub struct WorldSet {
    worlds: Vec<(World, f64)>,
}

impl WorldSet {
    pub fn new(worlds: Vec<(World, f64)>) -> WorldSet {
        WorldSet { worlds }
    }

    /// The world-set containing exactly one certain world.
    pub fn certain(w: World) -> WorldSet {
        WorldSet { worlds: vec![(w, 1.0)] }
    }

    pub fn worlds(&self) -> &[(World, f64)] {
        &self.worlds
    }

    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    pub fn push(&mut self, w: World, p: f64) {
        self.worlds.push((w, p));
    }

    /// Checks the probability invariant.
    pub fn validate(&self) -> Result<()> {
        use maybms_relational::Error;
        let total: f64 = self.worlds.iter().map(|(_, p)| *p).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(Error::InvalidExpr(format!(
                "world probabilities sum to {total}, expected 1"
            )));
        }
        if self.worlds.iter().any(|(_, p)| *p <= 0.0) {
            return Err(Error::InvalidExpr("non-positive world probability".into()));
        }
        Ok(())
    }

    /// Merges equal worlds (by canonical key), summing probabilities, and
    /// sorts deterministically. This is the semantic identity of a
    /// world-set; two world-sets are equivalent iff their merged forms agree.
    pub fn merged(&self) -> Vec<(WorldKey, f64)> {
        let mut acc: Vec<(WorldKey, f64)> = Vec::new();
        for (w, p) in &self.worlds {
            let key = w.canonical_key();
            match acc.iter_mut().find(|(k, _)| *k == key) {
                Some((_, q)) => *q += p,
                None => acc.push((key, *p)),
            }
        }
        acc.sort_by(|a, b| a.0.cmp(&b.0));
        acc
    }

    /// Semantic equivalence of two world-sets: same worlds with the same
    /// total probabilities (within `eps`).
    pub fn equivalent(&self, other: &WorldSet, eps: f64) -> bool {
        let (a, b) = (self.merged(), other.merged());
        if a.len() != b.len() {
            return false;
        }
        a.iter()
            .zip(&b)
            .all(|((ka, pa), (kb, pb))| ka == kb && (pa - pb).abs() <= eps)
    }

    /// Applies a per-world transformation, keeping probabilities. The
    /// closure maps each world to a new world (e.g. "evaluate query Q").
    pub fn map<F>(&self, mut f: F) -> Result<WorldSet>
    where
        F: FnMut(&World) -> Result<World>,
    {
        let mut out = Vec::with_capacity(self.worlds.len());
        for (w, p) in &self.worlds {
            out.push((f(w)?, *p));
        }
        Ok(WorldSet { worlds: out })
    }

    /// Removes worlds failing a predicate and renormalizes probabilities —
    /// the semantics of data cleaning / conditioning (E2).
    pub fn filter<F>(&self, mut keep: F) -> Result<WorldSet>
    where
        F: FnMut(&World) -> Result<bool>,
    {
        let mut out = Vec::new();
        for (w, p) in &self.worlds {
            if keep(w)? {
                out.push((w.clone(), *p));
            }
        }
        let total: f64 = out.iter().map(|(_, p)| *p).sum();
        if total > 0.0 {
            for (_, p) in &mut out {
                *p /= total;
            }
        }
        Ok(WorldSet { worlds: out })
    }

    /// All tuples of relation `rel` possible in some world, with the total
    /// probability of the worlds containing them — brute-force `prob()`.
    pub fn tuple_confidence(&self, rel: &str) -> Vec<(Tuple, f64)> {
        let mut acc: Vec<(Tuple, f64)> = Vec::new();
        for (w, p) in &self.worlds {
            if let Some(r) = w.get(rel) {
                for t in r.canonical().rows() {
                    match acc.iter_mut().find(|(u, _)| u == t) {
                        Some((_, q)) => *q += p,
                        None => acc.push((t.clone(), *p)),
                    }
                }
            }
        }
        acc.sort_by(|a, b| a.0.cmp(&b.0));
        acc
    }

    /// Tuples present in *every* world (certain answers).
    pub fn certain_tuples(&self, rel: &str) -> Vec<Tuple> {
        self.tuple_confidence(rel)
            .into_iter()
            .filter(|(_, p)| (*p - 1.0).abs() < 1e-9)
            .map(|(t, _)| t)
            .collect()
    }

    /// Tuples present in at least one world (possible answers).
    pub fn possible_tuples(&self, rel: &str) -> Vec<Tuple> {
        self.tuple_confidence(rel).into_iter().map(|(t, _)| t).collect()
    }

    /// Brute-force expected cardinality of `rel` (set semantics).
    pub fn expected_count(&self, rel: &str) -> f64 {
        self.worlds
            .iter()
            .map(|(w, p)| w.get(rel).map(|r| r.canonical().len()).unwrap_or(0) as f64 * p)
            .sum()
    }

    /// Brute-force expected sum of column `col` over `rel` (set semantics);
    /// non-numeric and NULL values contribute 0.
    pub fn expected_sum(&self, rel: &str, col: usize) -> f64 {
        self.worlds
            .iter()
            .map(|(w, p)| {
                w.get(rel)
                    .map(|r| {
                        r.canonical()
                            .iter()
                            .map(|t| t[col].as_f64().unwrap_or(0.0))
                            .sum::<f64>()
                    })
                    .unwrap_or(0.0)
                    * p
            })
            .sum()
    }

    /// Probability that relation `rel` is non-empty — the paper's
    /// `prob()`-style boolean query confidence.
    pub fn nonempty_confidence(&self, rel: &str) -> f64 {
        self.worlds
            .iter()
            .filter(|(w, _)| w.get(rel).map(|r| !r.is_empty()).unwrap_or(false))
            .map(|(_, p)| *p)
            .sum()
    }
}

/// Convenience: builds a one-relation, one-row world for tests.
pub fn tiny_world(rel: &str, r: Relation) -> World {
    World::single(rel, r)
}

/// Convenience: a `Value` row.
pub fn row(vals: Vec<Value>) -> Tuple {
    Tuple::new(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_relational::{ColumnType, Schema};

    fn rel(vals: &[i64]) -> Relation {
        let mut r = Relation::empty(Schema::new(vec![("a", ColumnType::Int)]));
        for v in vals {
            r.push_values(vec![Value::Int(*v)]).unwrap();
        }
        r
    }

    #[test]
    fn world_equality_is_set_based() {
        let w1 = World::single("r", rel(&[1, 2, 2]));
        let w2 = World::single("r", rel(&[2, 1]));
        assert_eq!(w1, w2);
        let w3 = World::single("r", rel(&[1]));
        assert_ne!(w1, w3);
    }

    #[test]
    fn validate_checks_probabilities() {
        let ws = WorldSet::new(vec![
            (World::single("r", rel(&[1])), 0.4),
            (World::single("r", rel(&[2])), 0.6),
        ]);
        assert!(ws.validate().is_ok());
        let bad = WorldSet::new(vec![(World::single("r", rel(&[1])), 0.5)]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn merged_combines_equal_worlds() {
        let ws = WorldSet::new(vec![
            (World::single("r", rel(&[1])), 0.3),
            (World::single("r", rel(&[1])), 0.2),
            (World::single("r", rel(&[2])), 0.5),
        ]);
        let m = ws.merged();
        assert_eq!(m.len(), 2);
        assert!(ws.equivalent(
            &WorldSet::new(vec![
                (World::single("r", rel(&[2])), 0.5),
                (World::single("r", rel(&[1])), 0.5),
            ]),
            1e-9
        ));
    }

    #[test]
    fn filter_renormalizes() {
        let ws = WorldSet::new(vec![
            (World::single("r", rel(&[1])), 0.4),
            (World::single("r", rel(&[2])), 0.6),
        ]);
        let cleaned = ws
            .filter(|w| Ok(w.get("r").unwrap().rows()[0][0] == Value::Int(1)))
            .unwrap();
        assert_eq!(cleaned.len(), 1);
        assert!((cleaned.worlds()[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tuple_confidence_sums_world_probabilities() {
        let ws = WorldSet::new(vec![
            (World::single("r", rel(&[1, 2])), 0.4),
            (World::single("r", rel(&[2])), 0.6),
        ]);
        let conf = ws.tuple_confidence("r");
        assert_eq!(conf.len(), 2);
        assert_eq!(conf[0].0[0], Value::Int(1));
        assert!((conf[0].1 - 0.4).abs() < 1e-12);
        assert!((conf[1].1 - 1.0).abs() < 1e-12);
        assert_eq!(ws.certain_tuples("r").len(), 1);
        assert_eq!(ws.possible_tuples("r").len(), 2);
    }

    #[test]
    fn nonempty_confidence() {
        let ws = WorldSet::new(vec![
            (World::single("r", rel(&[])), 0.25),
            (World::single("r", rel(&[9])), 0.75),
        ]);
        assert!((ws.nonempty_confidence("r") - 0.75).abs() < 1e-12);
        assert_eq!(ws.nonempty_confidence("missing"), 0.0);
    }

    #[test]
    fn map_applies_per_world() {
        let ws = WorldSet::new(vec![
            (World::single("r", rel(&[1, 2, 3])), 1.0),
        ]);
        let mapped = ws
            .map(|w| {
                let r = w.get("r").unwrap();
                let filtered = maybms_relational::ops::select(
                    r,
                    &maybms_relational::Expr::col("a").gt(maybms_relational::Expr::lit(1i64)),
                )?;
                Ok(World::single("q", filtered))
            })
            .unwrap();
        assert_eq!(mapped.worlds()[0].0.get("q").unwrap().len(), 2);
    }
}
