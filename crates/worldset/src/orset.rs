//! Attribute-level or-set relations.
//!
//! An or-set relation looks like an ordinary relation except that each field
//! holds a *set of alternatives* (with probabilities). This is the noise
//! model of the paper's census experiment: "We introduced noise with
//! different degree of incompleteness to the data by replacing randomly
//! picked values with or-sets." Every field's choice is independent of all
//! other fields — exactly the situation WSDs decompose maximally.

use maybms_relational::{Error, Relation, Result, Schema, Tuple, Value};

/// One field of an or-set relation: a non-empty list of alternatives with
/// probabilities summing to 1. A *certain* cell has a single alternative
/// with probability 1.
#[derive(Debug, Clone, PartialEq)]
pub struct OrSetCell {
    alternatives: Vec<(Value, f64)>,
}

impl OrSetCell {
    /// A certain (single-alternative) cell.
    pub fn certain(v: impl Into<Value>) -> OrSetCell {
        OrSetCell { alternatives: vec![(v.into(), 1.0)] }
    }

    /// An or-set with uniform probabilities.
    pub fn uniform(vals: Vec<Value>) -> Result<OrSetCell> {
        if vals.is_empty() {
            return Err(Error::InvalidExpr("empty or-set".into()));
        }
        let p = 1.0 / vals.len() as f64;
        Ok(OrSetCell {
            alternatives: vals.into_iter().map(|v| (v, p)).collect(),
        })
    }

    /// An or-set with explicit probabilities; they must be positive and sum
    /// to 1 (within 1e-9).
    pub fn weighted(alts: Vec<(Value, f64)>) -> Result<OrSetCell> {
        if alts.is_empty() {
            return Err(Error::InvalidExpr("empty or-set".into()));
        }
        let total: f64 = alts.iter().map(|(_, p)| *p).sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(Error::InvalidExpr(format!(
                "or-set probabilities sum to {total}, expected 1"
            )));
        }
        if alts.iter().any(|(_, p)| *p <= 0.0) {
            return Err(Error::InvalidExpr("non-positive alternative probability".into()));
        }
        Ok(OrSetCell { alternatives: alts })
    }

    pub fn alternatives(&self) -> &[(Value, f64)] {
        &self.alternatives
    }

    /// Number of alternatives.
    pub fn width(&self) -> usize {
        self.alternatives.len()
    }

    /// True iff the cell has exactly one alternative.
    pub fn is_certain(&self) -> bool {
        self.alternatives.len() == 1
    }

    /// The single value of a certain cell.
    pub fn certain_value(&self) -> Option<&Value> {
        if self.is_certain() {
            Some(&self.alternatives[0].0)
        } else {
            None
        }
    }

    /// Estimated byte footprint, mirroring [`Value::size_bytes`] plus the
    /// probability column the paper's probabilistic extension adds.
    pub fn size_bytes(&self) -> usize {
        self.alternatives
            .iter()
            .map(|(v, _)| v.size_bytes() + std::mem::size_of::<f64>())
            .sum()
    }
}

/// A relation whose fields are or-sets. All field choices are independent.
#[derive(Debug, Clone, PartialEq)]
pub struct OrSetRelation {
    schema: Schema,
    rows: Vec<Vec<OrSetCell>>,
}

impl OrSetRelation {
    pub fn empty(schema: Schema) -> OrSetRelation {
        OrSetRelation { schema, rows: Vec::new() }
    }

    /// Lifts an ordinary relation: every field becomes a certain cell.
    pub fn from_relation(r: &Relation) -> OrSetRelation {
        let rows = r
            .iter()
            .map(|t| t.values().iter().map(|v| OrSetCell::certain(v.clone())).collect())
            .collect();
        OrSetRelation { schema: r.schema().clone(), rows }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Vec<OrSetCell>] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validates arity and types of all alternatives, then appends.
    pub fn push(&mut self, row: Vec<OrSetCell>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::TypeError(format!(
                "or-set row arity {} does not match schema arity {}",
                row.len(),
                self.schema.len()
            )));
        }
        for (i, cell) in row.iter().enumerate() {
            let col = self.schema.column(i);
            for (v, _) in cell.alternatives() {
                if !v.matches_type(col.ty) {
                    return Err(Error::TypeError(format!(
                        "alternative {v} not valid for column {} of type {}",
                        col.name, col.ty
                    )));
                }
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Replaces one field with an or-set (used by the noise injector).
    pub fn set_cell(&mut self, row: usize, col: usize, cell: OrSetCell) -> Result<()> {
        let column = self.schema.column(col);
        for (v, _) in cell.alternatives() {
            if !v.matches_type(column.ty) {
                return Err(Error::TypeError(format!(
                    "alternative {v} not valid for column {}",
                    column.name
                )));
            }
        }
        let r = self
            .rows
            .get_mut(row)
            .ok_or_else(|| Error::InvalidExpr(format!("row {row} out of range")))?;
        r[col] = cell;
        Ok(())
    }

    pub fn cell(&self, row: usize, col: usize) -> &OrSetCell {
        &self.rows[row][col]
    }

    /// Number of uncertain (multi-alternative) fields.
    pub fn uncertain_fields(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| r.iter())
            .filter(|c| !c.is_certain())
            .count()
    }

    /// log2 of the number of possible worlds (sum of log2 of field widths).
    /// The paper's census scenario yields numbers like 2^624449, far beyond
    /// machine integers; exact counting lives in `maybms-core::bigint`.
    pub fn world_count_log2(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|c| (c.width() as f64).log2())
            .sum()
    }

    /// One world picked by always taking the first (most likely by
    /// convention) alternative — the "single world" used by conventional
    /// processing in E3.
    pub fn first_world(&self) -> Relation {
        let rows: Vec<Tuple> = self
            .rows
            .iter()
            .map(|r| Tuple::new(r.iter().map(|c| c.alternatives()[0].0.clone()).collect()))
            .collect();
        Relation::from_rows_unchecked(self.schema.clone(), rows)
    }

    /// Estimated storage footprint of the or-set representation.
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(OrSetCell::size_bytes).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_relational::ColumnType;

    fn schema() -> Schema {
        Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Str)])
    }

    #[test]
    fn certain_and_uniform_cells() {
        let c = OrSetCell::certain(5i64);
        assert!(c.is_certain());
        assert_eq!(c.certain_value(), Some(&Value::Int(5)));
        let u = OrSetCell::uniform(vec![Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(u.width(), 2);
        assert!((u.alternatives()[0].1 - 0.5).abs() < 1e-12);
        assert!(OrSetCell::uniform(vec![]).is_err());
    }

    #[test]
    fn weighted_validates() {
        assert!(OrSetCell::weighted(vec![(Value::Int(1), 0.4), (Value::Int(2), 0.6)]).is_ok());
        assert!(OrSetCell::weighted(vec![(Value::Int(1), 0.4), (Value::Int(2), 0.4)]).is_err());
        assert!(OrSetCell::weighted(vec![(Value::Int(1), 1.5), (Value::Int(2), -0.5)]).is_err());
        assert!(OrSetCell::weighted(vec![]).is_err());
    }

    #[test]
    fn push_validates_types() {
        let mut r = OrSetRelation::empty(schema());
        assert!(r
            .push(vec![OrSetCell::certain(1i64), OrSetCell::certain("x")])
            .is_ok());
        assert!(r
            .push(vec![OrSetCell::certain("wrong"), OrSetCell::certain("x")])
            .is_err());
        assert!(r.push(vec![OrSetCell::certain(1i64)]).is_err());
    }

    #[test]
    fn world_count_log2() {
        let mut r = OrSetRelation::empty(schema());
        r.push(vec![
            OrSetCell::uniform(vec![Value::Int(1), Value::Int(2)]).unwrap(),
            OrSetCell::certain("x"),
        ])
        .unwrap();
        r.push(vec![
            OrSetCell::uniform(vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)])
                .unwrap(),
            OrSetCell::certain("y"),
        ])
        .unwrap();
        assert!((r.world_count_log2() - 3.0).abs() < 1e-12); // 2 * 4 = 8 worlds
        assert_eq!(r.uncertain_fields(), 2);
    }

    #[test]
    fn from_relation_round_trip_first_world() {
        let mut rel = Relation::empty(schema());
        rel.push_values(vec![Value::Int(7), Value::str("q")]).unwrap();
        let os = OrSetRelation::from_relation(&rel);
        assert_eq!(os.first_world(), rel);
        assert_eq!(os.uncertain_fields(), 0);
    }

    #[test]
    fn set_cell_replaces_and_validates() {
        let mut rel = Relation::empty(schema());
        rel.push_values(vec![Value::Int(7), Value::str("q")]).unwrap();
        let mut os = OrSetRelation::from_relation(&rel);
        os.set_cell(0, 0, OrSetCell::uniform(vec![Value::Int(1), Value::Int(2)]).unwrap())
            .unwrap();
        assert_eq!(os.uncertain_fields(), 1);
        assert!(os
            .set_cell(0, 0, OrSetCell::certain("not an int"))
            .is_err());
        assert!(os.set_cell(5, 0, OrSetCell::certain(1i64)).is_err());
    }
}
