//! # MayBMS-rs
//!
//! A from-scratch Rust reproduction of **MayBMS: Managing Incomplete
//! Information with Probabilistic World-Set Decompositions** (Antova, Koch,
//! Olteanu — ICDE 2007).
//!
//! This facade crate re-exports the whole system:
//!
//! * [`relational`] — the in-memory relational engine (PostgreSQL's role).
//! * [`worldset`] — explicit possible worlds, or-set relations, per-world
//!   query evaluation (oracle and "conventional processing" baseline).
//! * [`core`] — the paper's contribution: probabilistic world-set
//!   decompositions, their normalization, the relational algebra over them,
//!   confidence computation and chase-based data cleaning.
//! * [`sql`] — the SQL-like query language with incompleteness/probability
//!   constructs (`PROB()`, `POSSIBLE`, `CERTAIN`, `CONF`).
//! * [`storage`] — the durable storage engine: paged, checksummed
//!   snapshots plus a write-ahead log with crash recovery
//!   (`maybms_sql::Session::open` / `CHECKPOINT` sit on top).
//! * [`census`] — the synthetic census workload used by the experiments.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the paper's §2 medical scenario, or:
//!
//! ```
//! use maybms::prelude::*;
//!
//! // Build the paper's medical WSD and ask the paper's query.
//! let wsd = maybms_core::examples::medical_wsd();
//! let q = maybms_core::algebra::Query::table("R")
//!     .select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")))
//!     .project(["test"]);
//! let ans = q.eval(&wsd).unwrap();
//! let conf = ans.tuple_confidence("result").unwrap();
//! assert_eq!(conf.len(), 1);
//! assert!((conf[0].1 - 0.4).abs() < 1e-9); // P(ultrasound) = 0.4
//! ```

#![forbid(unsafe_code)]

pub use maybms_census as census;
pub use maybms_core as core;
pub use maybms_relational as relational;
pub use maybms_sql as sql;
pub use maybms_storage as storage;
pub use maybms_worldset as worldset;

/// Common imports for applications.
pub mod prelude {
    pub use maybms_census;
    pub use maybms_core;
    pub use maybms_relational::{
        ops, Catalog, ColumnType, Expr, Relation, Schema, Tuple, Value,
    };
    pub use maybms_sql;
    pub use maybms_worldset::{OrSetCell, OrSetRelation, World, WorldSet};
}
